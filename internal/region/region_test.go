package region

import (
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/landuse"
)

var t0 = time.Date(2010, 3, 15, 8, 0, 0, 0, time.UTC)

// testMap builds a 1km x 1km map split into a building west half and a
// transportation east half, with a campus polygon in the north-west corner.
func testMap(t *testing.T) *landuse.Map {
	t.Helper()
	m, err := landuse.NewMap(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 100)
	if err != nil {
		t.Fatal(err)
	}
	m.SetCategoryRect(geo.NewRect(geo.Pt(0, 0), geo.Pt(499, 999)), landuse.Building)
	m.SetCategoryRect(geo.NewRect(geo.Pt(500, 0), geo.Pt(999, 999)), landuse.Transportation)
	m.AddNamedRegion(landuse.NamedRegion{
		Name: "campus", Kind: "campus",
		Polygon: geo.Polygon{geo.Pt(0, 800), geo.Pt(200, 800), geo.Pt(200, 1000), geo.Pt(0, 1000)},
	})
	return m
}

func record(x, y float64, offsetSec int) gps.Record {
	return gps.Record{ObjectID: "u1", Position: geo.Pt(x, y), Time: t0.Add(time.Duration(offsetSec) * time.Second)}
}

func TestNewAnnotator(t *testing.T) {
	if _, err := NewAnnotator(nil); err == nil {
		t.Fatal("nil map should error")
	}
	if _, err := NewAnnotator(testMap(t)); err != nil {
		t.Fatal(err)
	}
}

func TestAnnotateTrajectoryGroupsByCategory(t *testing.T) {
	a, _ := NewAnnotator(testMap(t))
	tr := &gps.RawTrajectory{ID: "u1-T0", ObjectID: "u1", Records: []gps.Record{
		record(100, 100, 0), record(200, 100, 10), record(300, 100, 20), // building
		record(600, 100, 30), record(700, 100, 40), // transportation
		record(400, 100, 50), // back to building
	}}
	st, err := a.AnnotateTrajectory(tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Interpretation != "region" || st.ID != tr.ID {
		t.Fatalf("trajectory meta = %q %q", st.Interpretation, st.ID)
	}
	if len(st.Tuples) != 3 {
		t.Fatalf("tuples = %d, want 3 (building, transportation, building)", len(st.Tuples))
	}
	if st.Tuples[0].Annotations.Value(core.AnnLanduse) != string(landuse.Building) {
		t.Fatalf("first tuple landuse = %q", st.Tuples[0].Annotations.Value(core.AnnLanduse))
	}
	if st.Tuples[1].Annotations.Value(core.AnnLanduse) != string(landuse.Transportation) {
		t.Fatalf("second tuple landuse = %q", st.Tuples[1].Annotations.Value(core.AnnLanduse))
	}
	if st.Tuples[0].TimeIn != t0 || st.Tuples[0].TimeOut != t0.Add(20*time.Second) {
		t.Fatalf("first tuple times = %v-%v", st.Tuples[0].TimeIn, st.Tuples[0].TimeOut)
	}
	if st.Tuples[0].Annotations.Value(core.AnnLanduseTop) == "" {
		t.Fatal("top-level landuse annotation missing")
	}
	if err := st.Validate(); err != nil {
		t.Fatalf("structured trajectory invalid: %v", err)
	}
	// Places must be linked and of region kind.
	for i, tp := range st.Tuples {
		if tp.Place == nil || tp.Place.Kind != core.RegionPlace {
			t.Fatalf("tuple %d place = %+v", i, tp.Place)
		}
	}
}

func TestAnnotateTrajectoryOutsideMap(t *testing.T) {
	a, _ := NewAnnotator(testMap(t))
	tr := &gps.RawTrajectory{ID: "u1-T0", ObjectID: "u1", Records: []gps.Record{
		record(100, 100, 0), record(5000, 5000, 10), record(200, 100, 20),
	}}
	st, err := a.AnnotateTrajectory(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Tuples) != 3 {
		t.Fatalf("tuples = %d, want 3", len(st.Tuples))
	}
	if st.Tuples[1].Place != nil {
		t.Fatal("outside record should produce an unlinked tuple")
	}
	if _, err := a.AnnotateTrajectory(nil); err == nil {
		t.Fatal("nil trajectory should error")
	}
	if _, err := a.AnnotateTrajectory(&gps.RawTrajectory{ID: "x"}); err == nil {
		t.Fatal("empty trajectory should error")
	}
}

func makeEpisode(kind episode.Kind, center geo.Point, startMin, endMin, records int) *episode.Episode {
	return &episode.Episode{
		TrajectoryID: "u1-T0",
		ObjectID:     "u1",
		Kind:         kind,
		Start:        t0.Add(time.Duration(startMin) * time.Minute),
		End:          t0.Add(time.Duration(endMin) * time.Minute),
		Center:       center,
		Bounds:       geo.RectAround(center, 50),
		RecordCount:  records,
	}
}

func TestAnnotateEpisodes(t *testing.T) {
	a, _ := NewAnnotator(testMap(t))
	eps := []*episode.Episode{
		makeEpisode(episode.Stop, geo.Pt(100, 900), 0, 60, 100),  // building + campus
		makeEpisode(episode.Move, geo.Pt(550, 500), 60, 90, 50),  // straddles both halves
		makeEpisode(episode.Stop, geo.Pt(700, 100), 90, 480, 80), // transportation
	}
	tuples, err := a.AnnotateEpisodes(eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 3 {
		t.Fatalf("tuples = %d", len(tuples))
	}
	if got := tuples[0].Annotations.Value(core.AnnLanduse); got != string(landuse.Building) {
		t.Fatalf("stop 1 landuse = %q", got)
	}
	if got := tuples[0].Annotations.Value(core.AnnNamedRegion); got != "campus" {
		t.Fatalf("stop 1 named region = %q", got)
	}
	if got := tuples[2].Annotations.Value(core.AnnLanduse); got != string(landuse.Transportation) {
		t.Fatalf("stop 2 landuse = %q", got)
	}
	if tuples[2].Annotations.Value(core.AnnNamedRegion) != "" {
		t.Fatal("stop 2 should not be in a named region")
	}
	// Move episode gets the dominant category of its bounding box.
	if got := tuples[1].Annotations.Value(core.AnnLanduse); got == "" {
		t.Fatal("move episode should carry a landuse annotation")
	}
	if tuples[1].Kind != episode.Move || tuples[1].Episode != eps[1] {
		t.Fatal("move tuple should keep its kind and back-reference")
	}
	if _, err := a.AnnotateEpisodes(nil); err == nil {
		t.Fatal("no episodes should error")
	}
}

func TestAnnotateEpisodesOutsideMap(t *testing.T) {
	a, _ := NewAnnotator(testMap(t))
	eps := []*episode.Episode{makeEpisode(episode.Stop, geo.Pt(9000, 9000), 0, 10, 5)}
	tuples, err := a.AnnotateEpisodes(eps)
	if err != nil {
		t.Fatal(err)
	}
	if tuples[0].Annotations.Value(core.AnnLanduse) != "" {
		t.Fatal("outside stop should carry no landuse annotation")
	}
	if tuples[0].Place != nil {
		t.Fatal("outside stop should not link a place")
	}
}

func TestLanduseDistributions(t *testing.T) {
	a, _ := NewAnnotator(testMap(t))
	tr := &gps.RawTrajectory{ID: "u1-T0", ObjectID: "u1", Records: []gps.Record{
		record(100, 100, 0), record(200, 100, 10), record(600, 100, 20), record(5000, 5000, 30),
	}}
	d := a.LanduseDistribution(tr)
	if d.Total() != 3 {
		t.Fatalf("distribution total = %v (outside records must be ignored)", d.Total())
	}
	if d.Share(string(landuse.Building)) != 2.0/3.0 {
		t.Fatalf("building share = %v", d.Share(string(landuse.Building)))
	}
	if got := a.LanduseDistribution(nil); got.Total() != 0 {
		t.Fatal("nil trajectory distribution should be empty")
	}
	eps := []*episode.Episode{
		makeEpisode(episode.Stop, geo.Pt(100, 100), 0, 10, 30),
		makeEpisode(episode.Move, geo.Pt(700, 100), 10, 20, 70),
	}
	ed := a.EpisodeLanduseDistribution(eps)
	if ed.Total() != 100 {
		t.Fatalf("episode distribution total = %v", ed.Total())
	}
	if ed.Share(string(landuse.Transportation)) != 0.7 {
		t.Fatalf("transportation share = %v", ed.Share(string(landuse.Transportation)))
	}
}

func TestCompressionRatio(t *testing.T) {
	a, _ := NewAnnotator(testMap(t))
	// 300 records all inside the building half: one merged tuple.
	var recs []gps.Record
	for i := 0; i < 300; i++ {
		recs = append(recs, record(100+float64(i%5), 100, i))
	}
	tr := &gps.RawTrajectory{ID: "u1-T0", ObjectID: "u1", Records: recs}
	ratio, err := a.CompressionRatio(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 0.99 {
		t.Fatalf("compression ratio = %v, want > 0.99 for a single-region trajectory", ratio)
	}
	if _, err := a.CompressionRatio(&gps.RawTrajectory{ID: "x"}); err == nil {
		t.Fatal("empty trajectory should error")
	}
}
