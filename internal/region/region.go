// Package region implements SeMiTri's Semantic Region Annotation Layer
// (§4.1, Algorithm 1): a spatial join between trajectories (GPS records or
// stop/move episodes) and semantic regions — land-use cells and free-form
// named regions — producing the coarse-grained structured semantic
// trajectory Tregion and the land-use distributions of Figs. 9 and 14.
package region

import (
	"errors"
	"fmt"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/gps"
	"semitri/internal/landuse"
	"semitri/internal/stats"
)

// Annotator joins trajectory data with a land-use map. It is safe for
// concurrent use once constructed (the map is read-only).
type Annotator struct {
	landUse *landuse.Map
}

// NewAnnotator returns an annotator over the given land-use map.
func NewAnnotator(m *landuse.Map) (*Annotator, error) {
	if m == nil {
		return nil, errors.New("region: nil land-use map")
	}
	return &Annotator{landUse: m}, nil
}

// placeForCell builds the semantic place record for a land-use cell.
func placeForCell(c landuse.Cell) *core.Place {
	return &core.Place{
		ID:       fmt.Sprintf("cell-%d", c.ID),
		Kind:     core.RegionPlace,
		Name:     c.Category.Label(),
		Category: string(c.Category),
		Extent:   c.Extent,
	}
}

// AnnotateTrajectory implements Algorithm 1 on the raw GPS records: every
// record is joined with the land-use cell containing it, consecutive records
// falling in cells of the same category are grouped into a single tuple
// (lines 10-11 of the algorithm), and the enter/leave times are taken from
// the first and last record of the group. Records outside the map extent
// produce unlinked tuples so the trajectory still covers its whole duration.
func (a *Annotator) AnnotateTrajectory(t *gps.RawTrajectory) (*core.StructuredTrajectory, error) {
	if t == nil || len(t.Records) == 0 {
		return nil, errors.New("region: empty trajectory")
	}
	out := &core.StructuredTrajectory{ID: t.ID, ObjectID: t.ObjectID, Interpretation: "region"}
	var cur *core.EpisodeTuple
	var curCategory landuse.Category
	var haveCur bool
	flush := func() {
		if cur != nil {
			out.Tuples = append(out.Tuples, cur)
			cur = nil
			haveCur = false
		}
	}
	for _, rec := range t.Records {
		cell, ok := a.landUse.CellAt(rec.Position)
		if !ok {
			// Outside the map: close the current group and emit an unlinked tuple.
			flush()
			out.Tuples = append(out.Tuples, &core.EpisodeTuple{
				Kind: episode.Move, TimeIn: rec.Time, TimeOut: rec.Time,
			})
			continue
		}
		if haveCur && cell.Category == curCategory {
			cur.TimeOut = rec.Time
			continue
		}
		flush()
		cur = &core.EpisodeTuple{
			Kind:    episode.Move,
			Place:   placeForCell(cell),
			TimeIn:  rec.Time,
			TimeOut: rec.Time,
		}
		cur.Annotations.Add(core.Annotation{
			Key: core.AnnLanduse, Value: string(cell.Category), Confidence: 1, Source: "region",
		})
		cur.Annotations.Add(core.Annotation{
			Key: core.AnnLanduseTop, Value: cell.Category.TopLevel(), Confidence: 1, Source: "region",
		})
		curCategory = cell.Category
		haveCur = true
	}
	flush()
	return out, nil
}

// AnnotateEpisodes joins stop/move episodes with the land-use map using the
// spatial predicates of §4.1: the episode centre for stops (spatial
// subsumption) and the bounding rectangle for moves (intersection, annotated
// with the dominant category among intersected cells). Named free-form
// regions covering the episode are attached under AnnNamedRegion.
func (a *Annotator) AnnotateEpisodes(eps []*episode.Episode) ([]*core.EpisodeTuple, error) {
	if len(eps) == 0 {
		return nil, errors.New("region: no episodes")
	}
	out := make([]*core.EpisodeTuple, 0, len(eps))
	for _, ep := range eps {
		tuple := &core.EpisodeTuple{
			Kind:    ep.Kind,
			TimeIn:  ep.Start,
			TimeOut: ep.End,
			Episode: ep,
		}
		var cat landuse.Category
		var found bool
		if ep.Kind == episode.Stop {
			if cell, ok := a.landUse.CellAt(ep.Center); ok {
				tuple.Place = placeForCell(cell)
				cat, found = cell.Category, true
			}
		} else {
			cells := a.landUse.CellsIntersecting(ep.Bounds)
			if len(cells) > 0 {
				dist := stats.NewDistribution()
				for _, c := range cells {
					dist.AddCount(string(c.Category))
				}
				top := dist.TopN(1)[0]
				cat, found = landuse.Category(top), true
				// Link the place to the cell containing the episode centre
				// when possible, otherwise to the first intersected cell.
				if cell, ok := a.landUse.CellAt(ep.Center); ok {
					tuple.Place = placeForCell(cell)
				} else {
					tuple.Place = placeForCell(cells[0])
				}
			}
		}
		if found {
			tuple.Annotations.Add(core.Annotation{
				Key: core.AnnLanduse, Value: string(cat), Confidence: 1, Source: "region",
			})
			tuple.Annotations.Add(core.Annotation{
				Key: core.AnnLanduseTop, Value: cat.TopLevel(), Confidence: 1, Source: "region",
			})
		}
		// Named free-form regions (campus, recreation ...) covering the episode.
		var named []landuse.NamedRegion
		if ep.Kind == episode.Stop {
			named = a.landUse.NamedRegionsAt(ep.Center)
		} else {
			named = a.landUse.NamedRegionsIntersecting(ep.Bounds)
		}
		if len(named) > 0 {
			tuple.Annotations.Add(core.Annotation{
				Key: core.AnnNamedRegion, Value: named[0].Name, Confidence: 1, Source: "region",
			})
		}
		out = append(out, tuple)
	}
	return out, nil
}

// LanduseDistribution computes the per-category share of GPS records of the
// trajectory (the "trajectory" column of Fig. 9). Records outside the map
// are ignored.
func (a *Annotator) LanduseDistribution(t *gps.RawTrajectory) *stats.Distribution {
	d := stats.NewDistribution()
	if t == nil {
		return d
	}
	for _, rec := range t.Records {
		if c, ok := a.landUse.CategoryAt(rec.Position); ok {
			d.AddCount(string(c))
		}
	}
	return d
}

// EpisodeLanduseDistribution computes the per-category share over a set of
// episodes (the "move" and "stop" columns of Fig. 9 and the per-user columns
// of Fig. 14), weighting each episode by its GPS record count.
func (a *Annotator) EpisodeLanduseDistribution(eps []*episode.Episode) *stats.Distribution {
	d := stats.NewDistribution()
	for _, ep := range eps {
		if c, ok := a.landUse.CategoryAt(ep.Center); ok {
			d.Add(string(c), float64(ep.RecordCount))
		}
	}
	return d
}

// CompressionRatio returns the storage saving of representing the trajectory
// at the region level: 1 - (#tuples after merging) / (#GPS records), the
// ≈99.7% figure of §5.2.
func (a *Annotator) CompressionRatio(t *gps.RawTrajectory) (float64, error) {
	st, err := a.AnnotateTrajectory(t)
	if err != nil {
		return 0, err
	}
	merged := st.MergeConsecutive(core.AnnLanduse)
	return stats.CompressionRatio(len(t.Records), len(merged.Tuples)), nil
}
