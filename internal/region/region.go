// Package region implements SeMiTri's Semantic Region Annotation Layer
// (§4.1, Algorithm 1): a spatial join between trajectories (GPS records or
// stop/move episodes) and semantic regions — land-use cells and free-form
// named regions — producing the coarse-grained structured semantic
// trajectory Tregion and the land-use distributions of Figs. 9 and 14.
//
// All spatial work goes through the shared spatial layer: rectangle joins
// against the cell raster run over the map's spatial.Index view
// (Map.CellIndex), named regions come from the map's bulk-loaded region
// index, and point location is O(1) arithmetic on the raster's spatial.Grid
// accelerated by the per-object last-cell cache (Cursor) that exploits GPS
// locality — consecutive records rarely leave a 100 m cell.
package region

import (
	"errors"
	"fmt"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/landuse"
	"semitri/internal/spatial"
	"semitri/internal/stats"
)

// Annotator joins trajectory data with a land-use map. It is safe for
// concurrent use once constructed (the map is read-only); Cursors are
// per-goroutine.
type Annotator struct {
	landUse *landuse.Map
	cells   spatial.Index
}

// NewAnnotator returns an annotator over the given land-use map.
func NewAnnotator(m *landuse.Map) (*Annotator, error) {
	if m == nil {
		return nil, errors.New("region: nil land-use map")
	}
	return &Annotator{landUse: m, cells: m.CellIndex()}, nil
}

// Cursor is the per-object locality cache of the region layer: the last
// land-use cell a record resolved to. Not safe for concurrent use; keep one
// per moving object (or per trajectory in the batch path).
type Cursor struct {
	cell landuse.Cursor
}

// NewCursor returns an empty locality cursor for the annotator.
func (a *Annotator) NewCursor() *Cursor { return &Cursor{} }

// Stats returns the cell-cache hit/miss counters.
func (c *Cursor) Stats() (hits, misses uint64) { return c.cell.Stats() }

// cellAt resolves the cell containing p through the cursor (nil = uncached).
func (a *Annotator) cellAt(p geo.Point, cur *Cursor) (landuse.Cell, bool) {
	if cur == nil {
		return a.landUse.CellAt(p)
	}
	return a.landUse.CellAtCursor(p, &cur.cell)
}

// placeForCell builds the semantic place record for a land-use cell.
func placeForCell(c landuse.Cell) *core.Place {
	return &core.Place{
		ID:       fmt.Sprintf("cell-%d", c.ID),
		Kind:     core.RegionPlace,
		Name:     c.Category.Label(),
		Category: string(c.Category),
		Extent:   c.Extent,
	}
}

// AnnotateTrajectory implements Algorithm 1 on the raw GPS records: every
// record is joined with the land-use cell containing it, consecutive records
// falling in cells of the same category are grouped into a single tuple
// (lines 10-11 of the algorithm), and the enter/leave times are taken from
// the first and last record of the group. Records outside the map extent
// produce unlinked tuples so the trajectory still covers its whole duration.
func (a *Annotator) AnnotateTrajectory(t *gps.RawTrajectory) (*core.StructuredTrajectory, error) {
	return a.AnnotateTrajectoryCursor(t, nil)
}

// AnnotateTrajectoryCursor is AnnotateTrajectory with a per-object locality
// cursor; lc may be nil. Cached and uncached results are identical.
func (a *Annotator) AnnotateTrajectoryCursor(t *gps.RawTrajectory, lc *Cursor) (*core.StructuredTrajectory, error) {
	if t == nil || len(t.Records) == 0 {
		return nil, errors.New("region: empty trajectory")
	}
	out := &core.StructuredTrajectory{ID: t.ID, ObjectID: t.ObjectID, Interpretation: "region"}
	var cur *core.EpisodeTuple
	var curCategory landuse.Category
	var haveCur bool
	flush := func() {
		if cur != nil {
			out.Tuples = append(out.Tuples, cur)
			cur = nil
			haveCur = false
		}
	}
	for _, rec := range t.Records {
		cell, ok := a.cellAt(rec.Position, lc)
		if !ok {
			// Outside the map: close the current group and emit an unlinked tuple.
			flush()
			out.Tuples = append(out.Tuples, &core.EpisodeTuple{
				Kind: episode.Move, TimeIn: rec.Time, TimeOut: rec.Time,
			})
			continue
		}
		if haveCur && cell.Category == curCategory {
			cur.TimeOut = rec.Time
			continue
		}
		flush()
		cur = &core.EpisodeTuple{
			Kind:    episode.Move,
			Place:   placeForCell(cell),
			TimeIn:  rec.Time,
			TimeOut: rec.Time,
		}
		cur.Annotations.Add(core.Annotation{
			Key: core.AnnLanduse, Value: string(cell.Category), Confidence: 1, Source: "region",
		})
		cur.Annotations.Add(core.Annotation{
			Key: core.AnnLanduseTop, Value: cell.Category.TopLevel(), Confidence: 1, Source: "region",
		})
		curCategory = cell.Category
		haveCur = true
	}
	flush()
	return out, nil
}

// AnnotateEpisodes joins stop/move episodes with the land-use map using the
// spatial predicates of §4.1: the episode centre for stops (spatial
// subsumption) and the bounding rectangle for moves (intersection, annotated
// with the dominant category among intersected cells). Named free-form
// regions covering the episode are attached under AnnNamedRegion.
func (a *Annotator) AnnotateEpisodes(eps []*episode.Episode) ([]*core.EpisodeTuple, error) {
	return a.AnnotateEpisodesCursor(eps, nil)
}

// AnnotateEpisodesCursor is AnnotateEpisodes with a per-object locality
// cursor; cur may be nil. Cached and uncached results are identical.
func (a *Annotator) AnnotateEpisodesCursor(eps []*episode.Episode, cur *Cursor) ([]*core.EpisodeTuple, error) {
	if len(eps) == 0 {
		return nil, errors.New("region: no episodes")
	}
	out := make([]*core.EpisodeTuple, 0, len(eps))
	for _, ep := range eps {
		tuple := &core.EpisodeTuple{
			Kind:    ep.Kind,
			TimeIn:  ep.Start,
			TimeOut: ep.End,
			Episode: ep,
		}
		var cat landuse.Category
		var found bool
		if ep.Kind == episode.Stop {
			if cell, ok := a.cellAt(ep.Center, cur); ok {
				tuple.Place = placeForCell(cell)
				cat, found = cell.Category, true
			}
		} else {
			// Spatial join of the move's bounding rectangle with the raster,
			// through the spatial.Index view (same interface the line and
			// point layers query). The view reports cells in ascending id
			// order, matching the raster scan it replaces.
			var firstCell landuse.Cell
			n := 0
			dist := stats.NewDistribution()
			a.cells.Visit(ep.Bounds, func(it spatial.Item) bool {
				c := it.Value.(landuse.Cell)
				if n == 0 {
					firstCell = c
				}
				n++
				dist.AddCount(string(c.Category))
				return true
			})
			if n > 0 {
				top := dist.TopN(1)[0]
				cat, found = landuse.Category(top), true
				// Link the place to the cell containing the episode centre
				// when possible, otherwise to the first intersected cell.
				if cell, ok := a.cellAt(ep.Center, cur); ok {
					tuple.Place = placeForCell(cell)
				} else {
					tuple.Place = placeForCell(firstCell)
				}
			}
		}
		if found {
			tuple.Annotations.Add(core.Annotation{
				Key: core.AnnLanduse, Value: string(cat), Confidence: 1, Source: "region",
			})
			tuple.Annotations.Add(core.Annotation{
				Key: core.AnnLanduseTop, Value: cat.TopLevel(), Confidence: 1, Source: "region",
			})
		}
		// Named free-form regions (campus, recreation ...) covering the episode.
		var named []landuse.NamedRegion
		if ep.Kind == episode.Stop {
			named = a.landUse.NamedRegionsAt(ep.Center)
		} else {
			named = a.landUse.NamedRegionsIntersecting(ep.Bounds)
		}
		if len(named) > 0 {
			tuple.Annotations.Add(core.Annotation{
				Key: core.AnnNamedRegion, Value: named[0].Name, Confidence: 1, Source: "region",
			})
		}
		out = append(out, tuple)
	}
	return out, nil
}

// LanduseDistribution computes the per-category share of GPS records of the
// trajectory (the "trajectory" column of Fig. 9). Records outside the map
// are ignored.
func (a *Annotator) LanduseDistribution(t *gps.RawTrajectory) *stats.Distribution {
	d := stats.NewDistribution()
	if t == nil {
		return d
	}
	for _, rec := range t.Records {
		if c, ok := a.landUse.CategoryAt(rec.Position); ok {
			d.AddCount(string(c))
		}
	}
	return d
}

// EpisodeLanduseDistribution computes the per-category share over a set of
// episodes (the "move" and "stop" columns of Fig. 9 and the per-user columns
// of Fig. 14), weighting each episode by its GPS record count.
func (a *Annotator) EpisodeLanduseDistribution(eps []*episode.Episode) *stats.Distribution {
	d := stats.NewDistribution()
	for _, ep := range eps {
		if c, ok := a.landUse.CategoryAt(ep.Center); ok {
			d.Add(string(c), float64(ep.RecordCount))
		}
	}
	return d
}

// CompressionRatio returns the storage saving of representing the trajectory
// at the region level: 1 - (#tuples after merging) / (#GPS records), the
// ≈99.7% figure of §5.2.
func (a *Annotator) CompressionRatio(t *gps.RawTrajectory) (float64, error) {
	st, err := a.AnnotateTrajectory(t)
	if err != nil {
		return 0, err
	}
	merged := st.MergeConsecutive(core.AnnLanduse)
	return stats.CompressionRatio(len(t.Records), len(merged.Tuples)), nil
}
