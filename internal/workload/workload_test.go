package workload

import (
	"testing"
	"time"

	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/poi"
)

// testCity builds a small city shared by the workload tests. It is built
// once because network + land-use + POI generation dominates test time.
func testCity(t *testing.T) *City {
	t.Helper()
	cityOnce.Do(func() {
		cfg := DefaultCityConfig(7, 2000)
		cfg.Extent = geo.NewRect(geo.Pt(0, 0), geo.Pt(6000, 6000))
		var err error
		sharedCity, sharedCityErr = NewCity(cfg)
		_ = err
	})
	if sharedCityErr != nil {
		t.Fatal(sharedCityErr)
	}
	return sharedCity
}

var (
	cityOnce      = onceHelper{}
	sharedCity    *City
	sharedCityErr error
)

type onceHelper struct{ done bool }

func (o *onceHelper) Do(f func()) {
	if !o.done {
		o.done = true
		f()
	}
}

func TestNewCity(t *testing.T) {
	city := testCity(t)
	if city.Landuse == nil || city.Roads == nil || city.POIs == nil {
		t.Fatal("city components missing")
	}
	if city.POIs.Len() != 2000 {
		t.Fatalf("POI count = %d", city.POIs.Len())
	}
	if city.Roads.NumSegments() == 0 || city.Landuse.NumCells() == 0 {
		t.Fatal("city sources empty")
	}
	if _, err := NewCity(CityConfig{Extent: geo.EmptyRect()}); err == nil {
		t.Fatal("empty extent should error")
	}
	bad := DefaultCityConfig(1, 100)
	bad.LanduseCellSize = 0
	if _, err := NewCity(bad); err == nil {
		t.Fatal("invalid landuse cell size should error")
	}
	bad = DefaultCityConfig(1, 100)
	bad.BlockSize = 0
	if _, err := NewCity(bad); err == nil {
		t.Fatal("invalid block size should error")
	}
	bad = DefaultCityConfig(1, 0)
	if _, err := NewCity(bad); err == nil {
		t.Fatal("zero POI count should error")
	}
}

func TestVehicleConfigValidate(t *testing.T) {
	if err := DefaultTaxiConfig(1).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultPrivateCarConfig(1).Validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultTaxiConfig(1).Kind.String() != "taxi" || DefaultPrivateCarConfig(1).Kind.String() != "private-car" {
		t.Fatal("kind strings wrong")
	}
	bad := DefaultTaxiConfig(1)
	bad.NumVehicles = 0
	if bad.Validate() == nil {
		t.Fatal("zero vehicles should be invalid")
	}
	bad = DefaultTaxiConfig(1)
	bad.Sampling = 0
	if bad.Validate() == nil {
		t.Fatal("zero sampling should be invalid")
	}
	bad = DefaultTaxiConfig(1)
	bad.NoiseStd = -1
	if bad.Validate() == nil {
		t.Fatal("negative noise should be invalid")
	}
}

func TestGenerateTaxis(t *testing.T) {
	city := testCity(t)
	cfg := DefaultTaxiConfig(3)
	cfg.TripsPerVehicle = 4
	ds, err := GenerateVehicles(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Objects) != cfg.NumVehicles {
		t.Fatalf("objects = %d", len(ds.Objects))
	}
	if ds.RecordCount() < 1000 {
		t.Fatalf("record count = %d, expected a few thousand for 1-2s sampling", ds.RecordCount())
	}
	if len(ds.Records()) != ds.RecordCount() {
		t.Fatal("Records() and RecordCount() disagree")
	}
	for _, obj := range ds.Objects {
		recs := ds.PerObject[obj]
		truth := ds.Truth[obj]
		if len(truth.SegmentIDs) != len(recs) || len(truth.Modes) != len(recs) {
			t.Fatalf("%s ground truth misaligned: %d/%d/%d", obj, len(recs), len(truth.SegmentIDs), len(truth.Modes))
		}
		// Timestamps strictly increasing.
		for i := 1; i < len(recs); i++ {
			if !recs[i].Time.After(recs[i-1].Time) {
				t.Fatalf("%s record %d timestamp not increasing", obj, i)
			}
		}
		// Moving records carry segment ids and the car mode; stationary ones -1.
		var moving, stationary int
		for i := range recs {
			if truth.SegmentIDs[i] >= 0 {
				moving++
				if truth.Modes[i] != "car" {
					t.Fatalf("%s moving record %d mode = %q", obj, i, truth.Modes[i])
				}
			} else {
				stationary++
				if truth.Modes[i] != "" {
					t.Fatalf("%s stationary record %d mode = %q", obj, i, truth.Modes[i])
				}
			}
		}
		if moving == 0 || stationary == 0 {
			t.Fatalf("%s should have both moving and stationary records (%d/%d)", obj, moving, stationary)
		}
	}
	// Determinism.
	ds2, err := GenerateVehicles(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.RecordCount() != ds.RecordCount() {
		t.Fatal("generation not deterministic")
	}
}

func TestGeneratePrivateCarsStopTruth(t *testing.T) {
	city := testCity(t)
	cfg := DefaultPrivateCarConfig(5)
	cfg.NumVehicles = 10
	cfg.TripsPerVehicle = 3
	ds, err := GenerateVehicles(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var stops int
	for _, obj := range ds.Objects {
		truth := ds.Truth[obj]
		if len(truth.StopCategories) != len(truth.StopCenters) {
			t.Fatalf("%s stop truth misaligned", obj)
		}
		stops += len(truth.StopCategories)
		for _, c := range truth.StopCategories {
			if !c.Valid() {
				t.Fatalf("%s has invalid stop category %v", obj, c)
			}
		}
		for _, p := range truth.StopCenters {
			if !city.Extent.ContainsPoint(p) {
				t.Fatalf("%s stop centre %v outside the city", obj, p)
			}
		}
	}
	if stops == 0 {
		t.Fatal("private cars should produce POI stops")
	}
}

func TestGenerateVehiclesErrors(t *testing.T) {
	city := testCity(t)
	if _, err := GenerateVehicles(nil, DefaultTaxiConfig(1)); err == nil {
		t.Fatal("nil city should error")
	}
	bad := DefaultTaxiConfig(1)
	bad.NumVehicles = 0
	if _, err := GenerateVehicles(city, bad); err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestGeneratePeople(t *testing.T) {
	city := testCity(t)
	cfg := DefaultPeopleConfig(4, 2, 11)
	ds, err := GeneratePeople(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Objects) != 4 {
		t.Fatalf("objects = %d", len(ds.Objects))
	}
	sawMode := map[string]bool{}
	for _, obj := range ds.Objects {
		recs := ds.PerObject[obj]
		truth := ds.Truth[obj]
		if len(recs) < 100 {
			t.Fatalf("%s has only %d records", obj, len(recs))
		}
		if len(truth.SegmentIDs) != len(recs) {
			t.Fatalf("%s ground truth misaligned", obj)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Time.Before(recs[i-1].Time) {
				t.Fatalf("%s timestamps go backwards at %d", obj, i)
			}
		}
		for _, m := range truth.Modes {
			if m != "" {
				sawMode[m] = true
			}
		}
	}
	// The four users use walk, bicycle, bus and metro respectively; at least
	// walking and one motorised/assisted mode must appear in the truth.
	if !sawMode["walk"] {
		t.Fatalf("no walking records in people workload: %v", sawMode)
	}
	if len(sawMode) < 2 {
		t.Fatalf("expected multiple transport modes, got %v", sawMode)
	}
	// Errors.
	if _, err := GeneratePeople(nil, cfg); err == nil {
		t.Fatal("nil city should error")
	}
	bad := cfg
	bad.NumUsers = 0
	if _, err := GeneratePeople(city, bad); err == nil {
		t.Fatal("invalid config should error")
	}
	bad = cfg
	bad.SignalLossProb = 2
	if _, err := GeneratePeople(city, bad); err == nil {
		t.Fatal("invalid signal loss should error")
	}
	bad = cfg
	bad.Sampling = 0
	if _, err := GeneratePeople(city, bad); err == nil {
		t.Fatal("invalid sampling should error")
	}
}

func TestPeopleWorkFlowsIntoEpisodes(t *testing.T) {
	// End-to-end sanity: the people workload produces trajectories in which
	// the episode detector finds both stops and moves.
	city := testCity(t)
	cfg := DefaultPeopleConfig(1, 1, 21)
	cfg.SignalLossProb = 0 // keep all stays visible for this check
	ds, err := GeneratePeople(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	obj := ds.Objects[0]
	records := ds.PerObject[obj]
	cleaned := gps.Clean(records, gps.DefaultCleaningConfig())
	trajs := gps.IdentifyTrajectories(cleaned, gps.SegmentationConfig{MaxTimeGap: 2 * time.Hour, MinRecords: 20})
	if len(trajs) == 0 {
		t.Fatal("no trajectories identified from people workload")
	}
	var stops, moves int
	for _, tr := range trajs {
		eps, err := episode.Detect(tr, episode.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		stops += len(episode.Stops(eps))
		moves += len(episode.Moves(eps))
	}
	if stops == 0 || moves == 0 {
		t.Fatalf("expected both stops and moves, got %d stops %d moves", stops, moves)
	}
}

func TestGenerateDrive(t *testing.T) {
	city := testCity(t)
	cfg := DefaultDriveConfig(9)
	ds, err := GenerateDrive(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Objects) != 1 || ds.Objects[0] != "drive-001" {
		t.Fatalf("objects = %v", ds.Objects)
	}
	recs := ds.PerObject["drive-001"]
	truth := ds.Truth["drive-001"]
	if len(recs) < 500 {
		t.Fatalf("drive has only %d records", len(recs))
	}
	if len(truth.SegmentIDs) != len(recs) {
		t.Fatal("drive ground truth misaligned")
	}
	// Every record of a drive is on the network.
	for i, id := range truth.SegmentIDs {
		if id < 0 {
			t.Fatalf("drive record %d has no ground-truth segment", i)
		}
		seg, err := city.Roads.Segment(id)
		if err != nil {
			t.Fatalf("drive record %d references unknown segment %d", i, id)
		}
		// The noiseless position should be near the true segment; with noise
		// the distance stays within a few sigmas.
		if d := seg.Geom.DistanceToPoint(recs[i].Position); d > cfg.NoiseStd*6+1 {
			t.Fatalf("drive record %d is %v m from its true segment", i, d)
		}
	}
	// Errors.
	if _, err := GenerateDrive(nil, cfg); err == nil {
		t.Fatal("nil city should error")
	}
	bad := cfg
	bad.Legs = 0
	if _, err := GenerateDrive(city, bad); err == nil {
		t.Fatal("invalid config should error")
	}
	bad = cfg
	bad.Sampling = 0
	if _, err := GenerateDrive(city, bad); err == nil {
		t.Fatal("invalid sampling should error")
	}
	bad = cfg
	bad.NoiseStd = -2
	if _, err := GenerateDrive(city, bad); err == nil {
		t.Fatal("negative noise should error")
	}
}

func TestStopCategoriesMatchMilanShape(t *testing.T) {
	// Private-car stop categories are drawn from the city's POI set, which is
	// Milan-like: item sale and person life should dominate.
	city := testCity(t)
	cfg := DefaultPrivateCarConfig(13)
	cfg.NumVehicles = 40
	ds, err := GenerateVehicles(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[poi.Category]int{}
	total := 0
	for _, obj := range ds.Objects {
		for _, c := range ds.Truth[obj].StopCategories {
			counts[c]++
			total++
		}
	}
	if total < 50 {
		t.Fatalf("too few stops to check the distribution: %d", total)
	}
	if counts[poi.ItemSale]+counts[poi.PersonLife] <= counts[poi.Services]+counts[poi.Unknown] {
		t.Fatalf("stop category distribution does not match the Milan shape: %v", counts)
	}
}
