package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"semitri/internal/gps"
	"semitri/internal/roadnet"
)

// DriveConfig controls the single-drive workload used for the map-matching
// sensitivity analysis (the role of Krumm's Seattle benchmark in Fig. 10):
// one vehicle driving a long route whose true segment sequence is known
// exactly, sampled at a fixed rate with configurable GPS noise.
type DriveConfig struct {
	// Legs is the number of consecutive random destinations to chain.
	Legs int
	// Sampling is the GPS sampling interval (the Seattle benchmark is 1 s).
	Sampling time.Duration
	// NoiseStd is the standard deviation of the GPS noise in metres; the
	// sensitivity sweep varies it to stress the matcher.
	NoiseStd float64
	// Start is the timestamp of the first record.
	Start time.Time
	// Seed drives all randomness.
	Seed int64
}

// DefaultDriveConfig mirrors the two-hour 1 Hz Seattle drive at a reduced
// scale with realistic consumer-GPS noise.
func DefaultDriveConfig(seed int64) DriveConfig {
	return DriveConfig{
		Legs:     8,
		Sampling: 2 * time.Second,
		NoiseStd: 8,
		Start:    time.Date(2010, 3, 15, 9, 0, 0, 0, time.UTC),
		Seed:     seed,
	}
}

// Validate reports whether the configuration is usable.
func (c DriveConfig) Validate() error {
	if c.Legs <= 0 {
		return errors.New("workload: Legs must be positive")
	}
	if c.Sampling <= 0 {
		return errors.New("workload: Sampling must be positive")
	}
	if c.NoiseStd < 0 {
		return errors.New("workload: NoiseStd must be non-negative")
	}
	return nil
}

// GenerateDrive produces the benchmark drive: a single vehicle chaining legs
// between random crossings on the drivable network. The returned dataset has
// one object ("drive-001") whose ground-truth segment ids are exact.
func GenerateDrive(city *City, cfg DriveConfig) (*Dataset, error) {
	if city == nil {
		return nil, errors.New("workload: nil city")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	object := "drive-001"
	truth := &Truth{}
	var recs []gps.Record
	now := cfg.Start
	driveAllowed := func(c roadnet.Class) bool { return c != roadnet.MetroRail && c != roadnet.Footpath }
	current := rng.Intn(city.Roads.NumNodes())
	legs := 0
	attempts := 0
	for legs < cfg.Legs && attempts < cfg.Legs*10 {
		attempts++
		dest := rng.Intn(city.Roads.NumNodes())
		if dest == current {
			continue
		}
		route, err := city.Roads.ShortestPath(current, dest, driveAllowed)
		if err != nil || len(route.Segments) == 0 {
			continue
		}
		speed := 11 + rng.Float64()*6
		now = travelRoute(rng, city, &recs, truth, object, route, speed, cfg.Sampling, cfg.NoiseStd, "car", now)
		current = dest
		legs++
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("workload: drive generation produced no records after %d attempts", attempts)
	}
	return &Dataset{
		Name:      "benchmark-drive",
		City:      city,
		Objects:   []string{object},
		PerObject: map[string][]gps.Record{object: recs},
		Truth:     map[string]*Truth{object: truth},
	}, nil
}
