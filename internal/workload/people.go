package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/roadnet"
)

// PeopleConfig controls the smartphone people-trajectory generator, the
// synthetic counterpart of the Nokia dataset of Table 2: multi-modal daily
// movement between home, office and leisure/shopping places, with indoor
// signal loss and non-stationary sampling.
type PeopleConfig struct {
	// NumUsers is the number of people to simulate.
	NumUsers int
	// Days is the number of consecutive days per user.
	Days int
	// Sampling is the base sampling interval; the generator jitters it to
	// mimic the on-chip power-saving behaviour described in §5.3.
	Sampling time.Duration
	// NoiseStd is the GPS noise standard deviation while moving (metres).
	NoiseStd float64
	// SignalLossProb is the probability that an indoor stay produces no GPS
	// records at all.
	SignalLossProb float64
	// ErrandsPerDay is the mean number of extra stops besides home and work.
	ErrandsPerDay int
	// Start is the first day of the simulation.
	Start time.Time
	// Seed drives all randomness.
	Seed int64
}

// DefaultPeopleConfig returns a configuration shaped like the six profiled
// users of Table 2: daily home-office commutes plus errands, 10-30 s
// sampling, frequent indoor signal loss.
func DefaultPeopleConfig(numUsers, days int, seed int64) PeopleConfig {
	return PeopleConfig{
		NumUsers:       numUsers,
		Days:           days,
		Sampling:       15 * time.Second,
		NoiseStd:       8,
		SignalLossProb: 0.35,
		ErrandsPerDay:  2,
		Start:          time.Date(2010, 3, 15, 0, 0, 0, 0, time.UTC),
		Seed:           seed,
	}
}

// Validate reports whether the configuration is usable.
func (c PeopleConfig) Validate() error {
	if c.NumUsers <= 0 || c.Days <= 0 {
		return errors.New("workload: NumUsers and Days must be positive")
	}
	if c.Sampling <= 0 {
		return errors.New("workload: Sampling must be positive")
	}
	if c.SignalLossProb < 0 || c.SignalLossProb > 1 {
		return errors.New("workload: SignalLossProb must be in [0,1]")
	}
	return nil
}

// personProfile fixes a user's anchors and preferred transportation mode.
type personProfile struct {
	homeNode   int
	officeNode int
	homePos    geo.Point
	officePos  geo.Point
	// preferredMode is the commute mode: walk, bicycle, bus or metro.
	preferredMode string
}

// GeneratePeople produces the people dataset: for every user and day, a
// morning commute home -> office, an optional lunch errand, an evening
// commute back with optional shopping/leisure stops, all on the city's
// network with the mode-specific road classes and speeds. Ground truth
// records the segment, mode and the POI category of every errand stop.
func GeneratePeople(city *City, cfg PeopleConfig) (*Dataset, error) {
	if city == nil {
		return nil, errors.New("workload: nil city")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{
		Name:      "people-phones",
		City:      city,
		PerObject: map[string][]gps.Record{},
		Truth:     map[string]*Truth{},
	}
	modes := []string{"walk", "bicycle", "bus", "metro"}
	for u := 0; u < cfg.NumUsers; u++ {
		object := fmt.Sprintf("user-%03d", u+1)
		profile := personProfile{
			homeNode:      rng.Intn(city.Roads.NumNodes()),
			officeNode:    rng.Intn(city.Roads.NumNodes()),
			preferredMode: modes[u%len(modes)],
		}
		profile.homePos = mustNode(city, profile.homeNode)
		profile.officePos = mustNode(city, profile.officeNode)
		truth := &Truth{}
		var recs []gps.Record
		for day := 0; day < cfg.Days; day++ {
			dayStart := cfg.Start.AddDate(0, 0, day)
			now := dayStart.Add(7*time.Hour + time.Duration(rng.Intn(3600))*time.Second)
			// Morning at home.
			now = stay(rng, &recs, truth, object, profile.homePos,
				time.Duration(20+rng.Intn(30))*time.Minute, cfg.Sampling, cfg.SignalLossProb, now)
			// Commute to the office.
			now = commuteLeg(rng, city, cfg, &recs, truth, object, profile.homeNode, profile.officeNode, profile.preferredMode, now)
			// Work (long indoor stay, often without signal).
			now = stay(rng, &recs, truth, object, profile.officePos,
				time.Duration(6+rng.Intn(3))*time.Hour, cfg.Sampling, cfg.SignalLossProb, now)
			// Errands on the way home.
			current := profile.officeNode
			errands := rng.Intn(cfg.ErrandsPerDay + 1)
			for e := 0; e < errands && city.POIs.Len() > 0; e++ {
				p := city.POIs.All()[rng.Intn(city.POIs.Len())]
				node, ok := city.Roads.NearestNode(p.Position)
				if !ok || node == current {
					continue
				}
				now = commuteLeg(rng, city, cfg, &recs, truth, object, current, node, profile.preferredMode, now)
				now = stay(rng, &recs, truth, object, p.Position,
					time.Duration(15+rng.Intn(45))*time.Minute, cfg.Sampling, cfg.SignalLossProb*0.5, now)
				truth.StopCategories = append(truth.StopCategories, p.Category)
				truth.StopCenters = append(truth.StopCenters, p.Position)
				current = node
			}
			// Home for the evening.
			now = commuteLeg(rng, city, cfg, &recs, truth, object, current, profile.homeNode, profile.preferredMode, now)
			_ = stay(rng, &recs, truth, object, profile.homePos,
				time.Duration(1+rng.Intn(2))*time.Hour, cfg.Sampling, cfg.SignalLossProb, now)
		}
		if len(recs) == 0 {
			continue
		}
		ds.Objects = append(ds.Objects, object)
		ds.PerObject[object] = recs
		ds.Truth[object] = truth
	}
	if len(ds.Objects) == 0 {
		return nil, errors.New("workload: people generation produced no records")
	}
	return ds, nil
}

// commuteLeg routes a single leg between two crossings with the user's
// preferred mode, falling back to walking when the mode's sub-network does
// not connect the two crossings. Walking legs to and from metro platforms
// are generated implicitly because metro nodes sit on their own line.
func commuteLeg(rng *rand.Rand, city *City, cfg PeopleConfig, recs *[]gps.Record, truth *Truth,
	object string, fromNode, toNode int, mode string, now time.Time) time.Time {
	if fromNode == toNode {
		return now
	}
	var allowed func(roadnet.Class) bool
	var speed float64
	switch mode {
	case "walk":
		// Pedestrians stick to footpaths and residential streets (they only
		// fall back to arterials when nothing else connects the two points).
		allowed = func(c roadnet.Class) bool { return c == roadnet.Footpath || c == roadnet.Residential }
		speed = 1.4
	case "bicycle":
		allowed = func(c roadnet.Class) bool { return c == roadnet.Footpath || c == roadnet.Residential }
		speed = 4.5
	case "bus":
		allowed = func(c roadnet.Class) bool {
			return c == roadnet.Arterial || c == roadnet.Residential || c == roadnet.Highway
		}
		speed = 9
	case "metro":
		// Metro commutes are three-legged: walk to the line, ride, walk out.
		return metroCommute(rng, city, cfg, recs, truth, object, fromNode, toNode, now)
	default:
		allowed = nil
		speed = 1.4
	}
	route, err := city.Roads.ShortestPath(fromNode, toNode, allowed)
	if err != nil {
		// Fall back to an unrestricted walking route.
		route, err = city.Roads.ShortestPath(fromNode, toNode, nil)
		if err != nil {
			return now
		}
		mode = "walk"
		speed = 1.4
	}
	sampling := jitterSampling(rng, cfg.Sampling)
	return travelRoute(rng, city, recs, truth, object, route, speed, sampling, cfg.NoiseStd, mode, now)
}

// metroCommute walks to the nearest metro node, rides the line to the metro
// node nearest to the destination and walks the final stretch.
func metroCommute(rng *rand.Rand, city *City, cfg PeopleConfig, recs *[]gps.Record, truth *Truth,
	object string, fromNode, toNode int, now time.Time) time.Time {
	fromPos := mustNode(city, fromNode)
	toPos := mustNode(city, toNode)
	entry, entryNode, okEntry := nearestMetroNode(city, fromPos)
	exit, exitNode, okExit := nearestMetroNode(city, toPos)
	sampling := jitterSampling(rng, cfg.Sampling)
	// Pedestrian legs prefer footpaths and residential streets and fall back
	// to any non-metro road when the quiet sub-network does not connect the
	// two crossings.
	walkRoute := func(from, to int) *roadnet.Route {
		quiet := func(c roadnet.Class) bool { return c == roadnet.Footpath || c == roadnet.Residential }
		if route, err := city.Roads.ShortestPath(from, to, quiet); err == nil {
			return route
		}
		any := func(c roadnet.Class) bool { return c != roadnet.MetroRail }
		if route, err := city.Roads.ShortestPath(from, to, any); err == nil {
			return route
		}
		return nil
	}
	if !okEntry || !okExit || entryNode == exitNode {
		// No usable metro: walk the whole leg.
		if route := walkRoute(fromNode, toNode); route != nil {
			return travelRoute(rng, city, recs, truth, object, route, 1.4, sampling, cfg.NoiseStd, "walk", now)
		}
		return now
	}
	// Walk to the platform. Metro nodes are only connected to the metro line,
	// so the walking leg ends at the street crossing nearest to the platform.
	entryStreet, okES := nearestStreetNode(city, entry)
	exitStreet, okXS := nearestStreetNode(city, exit)
	if okES {
		if route := walkRoute(fromNode, entryStreet); route != nil {
			now = travelRoute(rng, city, recs, truth, object, route, 1.4, sampling, cfg.NoiseStd, "walk", now)
		}
	}
	// Ride the metro.
	metroOnly := func(c roadnet.Class) bool { return c == roadnet.MetroRail }
	if route, err := city.Roads.ShortestPath(entryNode, exitNode, metroOnly); err == nil {
		now = travelRoute(rng, city, recs, truth, object, route, roadnet.MetroRail.TypicalSpeed(), sampling, cfg.NoiseStd, "metro", now)
	}
	// Walk from the exit platform to the destination.
	if okXS {
		if route := walkRoute(exitStreet, toNode); route != nil {
			now = travelRoute(rng, city, recs, truth, object, route, 1.4, sampling, cfg.NoiseStd, "walk", now)
		}
	}
	return now
}

// nearestStreetNode returns the non-metro crossing closest to p.
func nearestStreetNode(city *City, p geo.Point) (int, bool) {
	bestD := -1.0
	bestNode := -1
	seen := map[int]bool{}
	for _, s := range city.Roads.Segments() {
		if s.Class == roadnet.MetroRail {
			continue
		}
		for _, node := range []int{s.From, s.To} {
			if seen[node] {
				continue
			}
			seen[node] = true
			pos, err := city.Roads.Node(node)
			if err != nil {
				continue
			}
			d := pos.DistanceTo(p)
			if bestD < 0 || d < bestD {
				bestD, bestNode = d, node
			}
		}
	}
	return bestNode, bestNode >= 0
}

// nearestMetroNode returns the position and node id of the metro-rail node
// closest to p (ok is false when the network has no metro).
func nearestMetroNode(city *City, p geo.Point) (geo.Point, int, bool) {
	bestD := -1.0
	bestNode := -1
	var bestPos geo.Point
	for _, s := range city.Roads.Segments() {
		if s.Class != roadnet.MetroRail {
			continue
		}
		for _, node := range []int{s.From, s.To} {
			pos, err := city.Roads.Node(node)
			if err != nil {
				continue
			}
			d := pos.DistanceTo(p)
			if bestD < 0 || d < bestD {
				bestD, bestNode, bestPos = d, node, pos
			}
		}
	}
	return bestPos, bestNode, bestNode >= 0
}

// jitterSampling perturbs the base sampling interval by up to +-30% to mimic
// the non-stationary sampling of power-managed smartphones (§5.3).
func jitterSampling(rng *rand.Rand, base time.Duration) time.Duration {
	f := 0.7 + rng.Float64()*0.6
	return time.Duration(float64(base) * f)
}
