package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/poi"
	"semitri/internal/roadnet"
)

// VehicleKind selects the behaviour profile of the generated vehicles.
type VehicleKind int

const (
	// Taxi vehicles drive nearly continuously with brief pick-up/drop-off
	// stops (the Lausanne taxi dataset of Table 1, 1 s sampling).
	Taxi VehicleKind = iota
	// PrivateCar vehicles make home-to-POI trips with longer parked stops at
	// POIs (the Milan private-car dataset of Table 1, ~40 s sampling).
	PrivateCar
)

// String implements fmt.Stringer.
func (k VehicleKind) String() string {
	if k == Taxi {
		return "taxi"
	}
	return "private-car"
}

// DestinationWeights gives the probability that a private-car trip targets a
// POI of each category (indexed by poi.Category). Car trips are dominated by
// shopping and leisure destinations, which is what produces the stop-category
// distribution of Fig. 11 (item sale ≈ 56%, person life ≈ 24%).
var DestinationWeights = []float64{0.06, 0.10, 0.54, 0.27, 0.03}

// VehicleConfig controls the vehicle workload generator.
type VehicleConfig struct {
	Kind VehicleKind
	// NumVehicles is the number of distinct moving objects.
	NumVehicles int
	// TripsPerVehicle is the number of trips each vehicle makes.
	TripsPerVehicle int
	// Sampling is the GPS sampling interval (1 s for taxis, ~40 s for the
	// Milan cars in the paper).
	Sampling time.Duration
	// NoiseStd is the standard deviation of the per-record GPS noise (metres).
	NoiseStd float64
	// StopDuration is the mean duration of a stop at a destination.
	StopDuration time.Duration
	// Start is the timestamp of the first record.
	Start time.Time
	// Seed drives all randomness.
	Seed int64
}

// DefaultTaxiConfig mirrors the Lausanne taxi dataset shape at a reduced
// scale: few vehicles, high-rate sampling, many short trips with brief stops.
func DefaultTaxiConfig(seed int64) VehicleConfig {
	return VehicleConfig{
		Kind:            Taxi,
		NumVehicles:     2,
		TripsPerVehicle: 12,
		Sampling:        2 * time.Second,
		NoiseStd:        5,
		StopDuration:    4 * time.Minute,
		Start:           time.Date(2010, 3, 15, 7, 0, 0, 0, time.UTC),
		Seed:            seed,
	}
}

// DefaultPrivateCarConfig mirrors the Milan private-car dataset shape at a
// reduced scale: many vehicles, sparse sampling, home-to-POI trips.
func DefaultPrivateCarConfig(seed int64) VehicleConfig {
	return VehicleConfig{
		Kind:            PrivateCar,
		NumVehicles:     60,
		TripsPerVehicle: 3,
		Sampling:        40 * time.Second,
		NoiseStd:        12,
		StopDuration:    45 * time.Minute,
		Start:           time.Date(2010, 3, 15, 8, 0, 0, 0, time.UTC),
		Seed:            seed,
	}
}

// Validate reports whether the configuration is usable.
func (c VehicleConfig) Validate() error {
	if c.NumVehicles <= 0 || c.TripsPerVehicle <= 0 {
		return errors.New("workload: NumVehicles and TripsPerVehicle must be positive")
	}
	if c.Sampling <= 0 {
		return errors.New("workload: Sampling must be positive")
	}
	if c.NoiseStd < 0 {
		return errors.New("workload: NoiseStd must be non-negative")
	}
	return nil
}

// GenerateVehicles produces a vehicle dataset over the given city.
//
// Taxis chain trips between random street crossings, pausing briefly at each
// destination; private cars start from a home crossing, drive to a POI
// destination, park there (a long stop whose true category is recorded in
// the ground truth) and eventually return home. The true road segment
// travelled is recorded for every moving record.
func GenerateVehicles(city *City, cfg VehicleConfig) (*Dataset, error) {
	if city == nil {
		return nil, errors.New("workload: nil city")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{
		Name:      fmt.Sprintf("%s-fleet", cfg.Kind),
		City:      city,
		PerObject: map[string][]gps.Record{},
		Truth:     map[string]*Truth{},
	}
	driveAllowed := func(c roadnet.Class) bool { return c != roadnet.MetroRail && c != roadnet.Footpath }
	for v := 0; v < cfg.NumVehicles; v++ {
		object := fmt.Sprintf("%s-%03d", cfg.Kind, v)
		truth := &Truth{}
		var recs []gps.Record
		now := cfg.Start.Add(time.Duration(rng.Intn(3600)) * time.Second)
		// Starting crossing; private cars treat it as home.
		homeNode := rng.Intn(city.Roads.NumNodes())
		current := homeNode
		for trip := 0; trip < cfg.TripsPerVehicle; trip++ {
			var destNode int
			var stopPos geo.Point
			var stopCat poi.Category
			haveStopPOI := false
			if city.POIs.Len() > 0 {
				// Destination: a POI (passengers and parked cars both go
				// where the POIs are, which concentrates vehicle movement in
				// the urban core as in the original datasets); park or drop
				// off at the nearest crossing. Private cars favour shopping
				// and leisure destinations (DestinationWeights).
				var p *poi.POI
				if cfg.Kind == PrivateCar {
					p = pickPOIByCategory(rng, city.POIs, DestinationWeights)
				}
				if p == nil {
					p = city.POIs.All()[rng.Intn(city.POIs.Len())]
				}
				node, ok := city.Roads.NearestNode(p.Position)
				if !ok {
					continue
				}
				destNode = node
				stopPos = p.Position
				if cfg.Kind == PrivateCar {
					stopCat = p.Category
					haveStopPOI = true
				}
			} else {
				destNode = rng.Intn(city.Roads.NumNodes())
				pos, err := city.Roads.Node(destNode)
				if err != nil {
					continue
				}
				stopPos = pos
			}
			if destNode == current {
				continue
			}
			route, err := city.Roads.ShortestPath(current, destNode, driveAllowed)
			if err != nil {
				continue
			}
			speed := 10 + rng.Float64()*5 // 10-15 m/s urban driving
			now = travelRoute(rng, city, &recs, truth, object, route, speed, cfg.Sampling, cfg.NoiseStd, "car", now)
			// Stop at the destination.
			stopDur := time.Duration(float64(cfg.StopDuration) * (0.5 + rng.Float64()))
			now = stay(rng, &recs, truth, object, stopPos, stopDur, cfg.Sampling, 0, now)
			if haveStopPOI {
				truth.StopCategories = append(truth.StopCategories, stopCat)
				truth.StopCenters = append(truth.StopCenters, stopPos)
			}
			current = destNode
			// Private cars return home after the last trip.
			if cfg.Kind == PrivateCar && trip == cfg.TripsPerVehicle-1 && current != homeNode {
				if route, err := city.Roads.ShortestPath(current, homeNode, driveAllowed); err == nil {
					now = travelRoute(rng, city, &recs, truth, object, route, 12, cfg.Sampling, cfg.NoiseStd, "car", now)
					now = stay(rng, &recs, truth, object, mustNode(city, homeNode), 2*cfg.StopDuration, cfg.Sampling, 0, now)
				}
			}
		}
		if len(recs) == 0 {
			continue
		}
		ds.Objects = append(ds.Objects, object)
		ds.PerObject[object] = recs
		ds.Truth[object] = truth
	}
	if len(ds.Objects) == 0 {
		return nil, errors.New("workload: vehicle generation produced no records")
	}
	return ds, nil
}

// pickPOIByCategory draws a destination POI with category probabilities given
// by weights (indexed by poi.Category); it returns nil when the drawn
// category has no POIs so the caller can fall back to a uniform draw.
func pickPOIByCategory(rng *rand.Rand, set *poi.Set, weights []float64) *poi.POI {
	if len(weights) != poi.NumCategories || set.Len() == 0 {
		return nil
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return nil
	}
	r := rng.Float64() * total
	var acc float64
	cat := poi.Unknown
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if r <= acc {
			cat = poi.Category(i)
			break
		}
	}
	candidates := set.ByCategory(cat)
	if len(candidates) == 0 {
		return nil
	}
	return candidates[rng.Intn(len(candidates))]
}

func mustNode(city *City, id int) geo.Point {
	p, err := city.Roads.Node(id)
	if err != nil {
		return geo.Point{}
	}
	return p
}
