// Package workload generates the synthetic GPS datasets that stand in for
// the proprietary traces used in the paper's evaluation (§5): Lausanne taxi
// and Milan private-car trajectories (Table 1), the Seattle drive used for
// the map-matching sensitivity analysis (Fig. 10) and the Nokia smartphone
// people trajectories (Table 2).
//
// Each generator produces GPS records plus exact ground truth (the road
// segment travelled, the transportation mode and the POI category visited at
// every planned stop), which the experiment harness uses to measure the
// matching and inference accuracy that the paper could only report
// qualitatively. All randomness flows through an explicit seed so every
// dataset is reproducible.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/landuse"
	"semitri/internal/poi"
	"semitri/internal/roadnet"
)

// City bundles the three 3rd-party sources of a synthetic urban environment:
// a land-use map, a road network and a POI set covering the same extent.
type City struct {
	Extent  geo.Rect
	Landuse *landuse.Map
	Roads   *roadnet.Network
	POIs    *poi.Set
}

// CityConfig controls the construction of a synthetic city.
type CityConfig struct {
	Seed     int64
	Extent   geo.Rect
	POICount int
	// BlockSize of the road grid in metres.
	BlockSize float64
	// LanduseCellSize in metres (the paper's source uses 100 m cells).
	LanduseCellSize float64
}

// DefaultCityConfig returns a 10 km x 10 km city with a 500 m street grid,
// 100 m land-use cells and the given number of POIs.
func DefaultCityConfig(seed int64, poiCount int) CityConfig {
	return CityConfig{
		Seed:            seed,
		Extent:          geo.NewRect(geo.Pt(0, 0), geo.Pt(10000, 10000)),
		POICount:        poiCount,
		BlockSize:       500,
		LanduseCellSize: 100,
	}
}

// NewCity builds the synthetic environment: land-use, roads and POIs share
// the same extent and are derived from the same seed.
func NewCity(cfg CityConfig) (*City, error) {
	if cfg.Extent.IsEmpty() {
		return nil, errors.New("workload: empty city extent")
	}
	luCfg := landuse.GeneratorConfig{
		Extent:          cfg.Extent,
		CellSize:        cfg.LanduseCellSize,
		Seed:            cfg.Seed,
		UrbanCoreRadius: cfg.Extent.Width() * 0.3,
		LakeFraction:    0.10,
	}
	lu, err := landuse.Generate(luCfg)
	if err != nil {
		return nil, fmt.Errorf("workload: landuse: %w", err)
	}
	roadCfg := roadnet.GeneratorConfig{
		Extent:           cfg.Extent,
		BlockSize:        cfg.BlockSize,
		Seed:             cfg.Seed + 1,
		WithMetro:        true,
		WithHighway:      true,
		FootpathFraction: 0.15,
	}
	roads, err := roadnet.Generate(roadCfg)
	if err != nil {
		return nil, fmt.Errorf("workload: roadnet: %w", err)
	}
	// Stamp transportation corridors along the major roads: the Swisstopo
	// source classifies the cells occupied by roads and railways as
	// "transportation areas" (1.3), which is why that class ranks second in
	// the paper's Fig. 9. Arterial, highway and metro segments overwrite the
	// land-use cells they cross.
	for _, seg := range roads.Segments() {
		switch seg.Class {
		case roadnet.Arterial, roadnet.Highway, roadnet.MetroRail:
			lu.SetCategoryRect(seg.Geom.Bounds().Expand(cfg.LanduseCellSize*0.3), landuse.Transportation)
		}
	}
	poiCfg := poi.DefaultGeneratorConfig(cfg.POICount, cfg.Seed+2)
	poiCfg.Extent = cfg.Extent
	pois, err := poi.Generate(poiCfg)
	if err != nil {
		return nil, fmt.Errorf("workload: poi: %w", err)
	}
	return &City{Extent: cfg.Extent, Landuse: lu, Roads: roads, POIs: pois}, nil
}

// Truth is the per-object ground truth aligned with the object's records.
type Truth struct {
	// SegmentIDs[i] is the road segment the object was on when record i was
	// produced, or -1 when the object was stationary or off the network.
	SegmentIDs []int
	// Modes[i] is the true transportation mode for record i ("" when
	// stationary). Values match the line layer's Mode strings.
	Modes []string
	// StopCategories lists, in order, the POI category of every planned stop.
	StopCategories []poi.Category
	// StopCenters lists the true stop locations, aligned with StopCategories.
	StopCenters []geo.Point
}

// Dataset is a generated GPS dataset with per-object records and ground truth.
type Dataset struct {
	Name      string
	City      *City
	Objects   []string
	PerObject map[string][]gps.Record
	Truth     map[string]*Truth
}

// Records returns all records of all objects, ordered by object then time.
func (d *Dataset) Records() []gps.Record {
	var out []gps.Record
	for _, obj := range d.Objects {
		out = append(out, d.PerObject[obj]...)
	}
	return out
}

// RecordCount returns the total number of records in the dataset.
func (d *Dataset) RecordCount() int {
	n := 0
	for _, obj := range d.Objects {
		n += len(d.PerObject[obj])
	}
	return n
}

// emit appends a record at the given position with noise and ground truth.
func emit(rng *rand.Rand, recs *[]gps.Record, truth *Truth, object string, pos geo.Point,
	now time.Time, noise float64, segID int, mode string) {
	noisy := geo.Pt(pos.X+rng.NormFloat64()*noise, pos.Y+rng.NormFloat64()*noise)
	*recs = append(*recs, gps.Record{ObjectID: object, Position: noisy, Time: now})
	truth.SegmentIDs = append(truth.SegmentIDs, segID)
	truth.Modes = append(truth.Modes, mode)
}

// travelRoute walks a route of the city's network, emitting records every
// samplingInterval at the given speed; it returns the advanced clock.
func travelRoute(rng *rand.Rand, city *City, recs *[]gps.Record, truth *Truth, object string,
	route *roadnet.Route, speed float64, sampling time.Duration, noise float64,
	mode string, now time.Time) time.Time {
	if route == nil || len(route.Segments) == 0 || len(route.Nodes) != len(route.Segments)+1 {
		return now
	}
	// Follow the node sequence so each segment is traversed in the direction
	// of travel (segments themselves are stored undirected).
	for i, segID := range route.Segments {
		from, errFrom := city.Roads.Node(route.Nodes[i])
		to, errTo := city.Roads.Node(route.Nodes[i+1])
		if errFrom != nil || errTo != nil {
			continue
		}
		length := from.DistanceTo(to)
		if length <= 0 {
			continue
		}
		steps := int(length / (speed * sampling.Seconds()))
		if steps < 1 {
			steps = 1
		}
		for s := 0; s <= steps; s++ {
			frac := float64(s) / float64(steps)
			pos := from.Lerp(to, frac)
			emit(rng, recs, truth, object, pos, now, noise, segID, mode)
			now = now.Add(sampling)
		}
	}
	return now
}

// stay emits low-jitter records around a fixed position for the given
// duration, simulating a stop; signalLossProb is the probability that the
// whole stay produces no records at all (indoor signal loss).
func stay(rng *rand.Rand, recs *[]gps.Record, truth *Truth, object string, pos geo.Point,
	dur time.Duration, sampling time.Duration, signalLossProb float64, now time.Time) time.Time {
	end := now.Add(dur)
	if rng.Float64() < signalLossProb {
		return end
	}
	for now.Before(end) {
		emit(rng, recs, truth, object, pos, now, 3, -1, "")
		now = now.Add(sampling)
	}
	return end
}
