package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"semitri/internal/store"
)

// TestParallelDeterminism is the parallel executor's property test: over a
// randomized workload and randomized queries, execution at workers ∈
// {2, 4, 8} must return results byte-identical — order included — to
// workers=1, for Execute, ExecuteJoin and Aggregate. The serial threshold is
// forced to 1 so even tiny candidate sets take the parallel paths.
func TestParallelDeterminism(t *testing.T) {
	st := store.NewSharded(8)
	e := NewEngineWith(st, Options{Parallelism: 1, SerialThreshold: 1})
	populate(t, st, 7, 6, 3, 14)
	rng := rand.New(rand.NewSource(99))

	queries := make([]Query, 0, 40)
	for i := 0; i < 38; i++ {
		queries = append(queries, randomQuery(rng))
	}
	// Always include the two extremes: the unconstrained full scan and a
	// limited query (limit pushdown must not change results either).
	queries = append(queries, Query{}, Query{Limit: 5})

	joins := []Join{
		{
			Left:  MustBuild(OnlyStops()),
			Right: MustBuild(OnlyStops()),
			On:    JoinOn{Within: time.Hour, MaxDistance: 400, DistinctObjects: true},
		},
		{
			Left:  MustBuild(),
			Right: MustBuild(OnlyMoves()),
			On:    JoinOn{TimeOverlap: true, SameObject: true},
			Limit: 20,
		},
	}
	aggs := []Aggregate{
		{By: DimObject, Metric: MetricCount},
		{By: DimAnnotation, AnnKey: "poi_category", Metric: MetricDistinctObjects, K: 3},
		{By: DimKind, Metric: MetricDuration},
	}

	// Serial references.
	refMatches := make([][]Match, len(queries))
	for i, q := range queries {
		ms, err := e.Execute(q)
		if err != nil {
			t.Fatalf("serial Execute(%+v): %v", q, err)
		}
		refMatches[i] = ms
	}
	refPairs := make([][]JoinMatch, len(joins))
	for i, j := range joins {
		ps, err := e.ExecuteJoin(j)
		if err != nil {
			t.Fatalf("serial ExecuteJoin: %v", err)
		}
		refPairs[i] = ps
	}
	refGroups := make([][]Group, len(aggs))
	for i, a := range aggs {
		a.Workers = 1
		gs, err := AggregateMatches(a, refMatches[len(queries)-2]) // the full scan
		if err != nil {
			t.Fatalf("serial Aggregate: %v", err)
		}
		refGroups[i] = gs
	}

	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			e.SetParallelism(workers)
			defer e.SetParallelism(1)
			for i, q := range queries {
				got, err := e.Execute(q)
				if err != nil {
					t.Fatalf("Execute(%+v): %v", q, err)
				}
				if !reflect.DeepEqual(got, refMatches[i]) {
					t.Fatalf("Execute(%+v) diverges at workers=%d: %d vs %d matches",
						q, workers, len(got), len(refMatches[i]))
				}
			}
			for i, j := range joins {
				got, jp, err := e.ExecuteJoinExplained(j)
				if err != nil {
					t.Fatalf("ExecuteJoin: %v", err)
				}
				if !reflect.DeepEqual(got, refPairs[i]) {
					t.Fatalf("ExecuteJoin diverges at workers=%d: %d vs %d pairs",
						workers, len(got), len(refPairs[i]))
				}
				if jp.Workers > workers {
					t.Fatalf("join plan reports %d workers, cap is %d", jp.Workers, workers)
				}
			}
			for i, a := range aggs {
				a.Workers = workers
				got, err := AggregateMatches(a, refMatches[len(queries)-2])
				if err != nil {
					t.Fatalf("Aggregate: %v", err)
				}
				if !reflect.DeepEqual(got, refGroups[i]) {
					t.Fatalf("Aggregate %+v diverges at workers=%d", a, workers)
				}
			}
		})
	}
}

// TestLimitPushdown asserts that a limited query returns exactly the prefix
// of the unlimited result — the limit satellite's contract: pushing the
// limit into candidate resolution (and cancelling parallel siblings) must
// not change what the first Limit matches are, serial or parallel.
func TestLimitPushdown(t *testing.T) {
	st := store.NewSharded(8)
	e := NewEngineWith(st, Options{Parallelism: 1, SerialThreshold: 1})
	populate(t, st, 11, 5, 2, 12)
	rng := rand.New(rand.NewSource(42))

	check := func(q Query) {
		t.Helper()
		full, err := e.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, limit := range []int{1, 3, len(full), len(full) + 5} {
			lq := q
			lq.Limit = limit
			got, err := e.Execute(lq)
			if err != nil {
				t.Fatal(err)
			}
			want := full
			if limit < len(full) {
				want = full[:limit]
			}
			if len(got) != len(want) {
				t.Fatalf("limit %d: got %d matches, want %d (query %+v)", limit, len(got), len(want), q)
			}
			if len(want) > 0 && !reflect.DeepEqual(got, want) {
				t.Fatalf("limit %d: results are not the unlimited prefix (query %+v)", limit, q)
			}
		}
	}
	for _, workers := range []int{1, 4} {
		e.SetParallelism(workers)
		check(Query{}) // full scan
		for i := 0; i < 25; i++ {
			check(randomQuery(rng))
		}
	}
}

// TestChunkBounds pins the chunking invariants parallel resolution relies
// on: bounds cover the refs exactly, chunks are non-empty, and no
// (trajectory, interpretation) group ever splits across a boundary.
func TestChunkBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		var refs []store.TupleRef
		groups := 1 + rng.Intn(12)
		for g := 0; g < groups; g++ {
			id := fmt.Sprintf("T%03d", g)
			for i := 0; i < 1+rng.Intn(9); i++ {
				refs = append(refs, store.TupleRef{TrajectoryID: id, Interpretation: "merged", Index: i})
			}
		}
		chunks := 1 + rng.Intn(8)
		bounds := chunkBounds(refs, chunks)
		if bounds[0] != 0 || bounds[len(bounds)-1] != len(refs) {
			t.Fatalf("bounds %v do not cover %d refs", bounds, len(refs))
		}
		if len(bounds)-1 > chunks {
			t.Fatalf("%d chunks produced, cap was %d", len(bounds)-1, chunks)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("empty or inverted chunk in %v", bounds)
			}
			if b := bounds[i]; b < len(refs) && refs[b].TrajectoryID == refs[b-1].TrajectoryID {
				t.Fatalf("boundary %d splits trajectory %s", b, refs[b].TrajectoryID)
			}
		}
	}
}
