// Package lang is the small declarative query language of the relational
// layer: a SQL-ish one-liner that compiles to the typed Query/Join/Aggregate
// structs of internal/query, so the HTTP serving layer (and any script
// poking it with curl) can express cross-object relational questions without
// constructing JSON-encoded structs. The shape is Datalog in spirit — joins
// follow from the shared clauses named in `on`, and the engine plans them
// greedily from cardinality estimates, no statistics — with SQL keywords for
// readability.
//
// Grammar (keywords case-insensitive; values are bare words — which cover
// ids, RFC 3339 timestamps and Go durations like 90m or 1h30m — or
// double-quoted strings when they contain spaces):
//
//	statement  = source [ "join" source "on" cond { "and" cond } ]
//	             [ "group" "by" dim [ metric ] [ "top" INT ] ]
//	             [ "limit" INT ] .
//	source     = ( "stops" | "moves" | "episodes" )
//	             [ "where" pred { "and" pred } ] .
//	pred       = "object" "=" value
//	           | "trajectory" "=" value
//	           | "interpretation" "=" value
//	           | "ann" "." key "=" value
//	           | "from" "=" value          (RFC 3339)
//	           | "to" "=" value            (RFC 3339)
//	           | "near" "(" NUM "," NUM "," NUM ")"       (x, y, radius m)
//	           | "window" "(" NUM "," NUM "," NUM "," NUM ")" .
//	cond       = "within" DURATION
//	           | "overlaps"
//	           | ( "distance" ) ( "<" | "<=" ) NUM        (metres)
//	           | "same" ( "object" | "place" )
//	           | "same" "ann" "." key
//	           | "distinct" "objects" .
//	dim        = "object" | "trajectory" | "place" | "kind"
//	           | "ann" "." key .
//	metric     = "count" | "distinct" "objects" | "duration" .
//
// The canonical co-location question — which objects stopped within 200 m
// and one hour of each other — reads:
//
//	stops join stops on distance <= 200 and within 1h and distinct objects
//	      group by object distinct objects top 10
package lang

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"

	"semitri/internal/geo"
	"semitri/internal/query"
)

// Statement is a parsed statement: a single-table query, or a join when
// Join is non-nil (Query is then Join.Left), optionally aggregated.
type Statement struct {
	Query query.Query
	Join  *query.Join
	Agg   *query.Aggregate
}

// Parse compiles one statement of the language into the typed structs. The
// result is fully validated: everything Parse returns, the engine executes.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return Statement{}, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return Statement{}, err
	}
	return stmt, nil
}

// ParseQuery compiles a single-table statement into its typed Query — the
// subset a standing subscription can evaluate incrementally. Joins,
// aggregations and limits are rejected with a descriptive error: /subscribe
// reuses the full statement grammar, but a continuous query is a predicate
// over single tuples, not a relational pipeline.
func ParseQuery(src string) (query.Query, error) {
	stmt, err := Parse(src)
	if err != nil {
		return query.Query{}, err
	}
	if stmt.Join != nil {
		return query.Query{}, errors.New("lang: joins cannot run as standing queries")
	}
	if stmt.Agg != nil {
		return query.Query{}, errors.New("lang: aggregations cannot run as standing queries")
	}
	if stmt.Query.Limit != 0 {
		return query.Query{}, errors.New("lang: standing queries cannot carry a limit")
	}
	return stmt.Query, nil
}

// Result is what running a statement produces: exactly one of Matches
// (single-table, unaggregated), Pairs (join, unaggregated) or Groups
// (aggregated), plus the plan the engine executed. The produced slice is
// never nil — an empty result still identifies the statement's shape.
type Result struct {
	Plan    string
	Matches []query.Match
	Pairs   []query.JoinMatch
	Groups  []query.Group
}

// Run parses and executes src against the engine.
func Run(e *query.Engine, src string) (Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return Result{}, err
	}
	var res Result
	if stmt.Join != nil {
		pairs, plan, err := e.ExecuteJoinExplained(*stmt.Join)
		if err != nil {
			return Result{}, err
		}
		res.Plan = plan.String()
		if stmt.Agg != nil {
			res.Groups, err = query.AggregatePairs(*stmt.Agg, pairs)
			return res, err
		}
		if pairs == nil {
			pairs = []query.JoinMatch{}
		}
		res.Pairs = pairs
		return res, nil
	}
	ms, plan, err := e.ExecuteExplained(stmt.Query)
	if err != nil {
		return Result{}, err
	}
	res.Plan = plan.String()
	if stmt.Agg != nil {
		res.Groups, err = query.AggregateMatches(*stmt.Agg, ms)
		return res, err
	}
	if ms == nil {
		ms = []query.Match{}
	}
	res.Matches = ms
	return res, nil
}

// RunTraced is Run plus the statement's EXPLAIN ANALYZE trace. The
// aggregation fold, when present, is timed as one extra trace stage.
func RunTraced(e *query.Engine, src string) (Result, *query.Trace, error) {
	stmt, err := Parse(src)
	if err != nil {
		return Result{}, nil, err
	}
	var res Result
	var tr *query.Trace
	if stmt.Join != nil {
		pairs, plan, jtr, err := e.ExecuteJoinTraced(*stmt.Join)
		if err != nil {
			return Result{}, nil, err
		}
		res.Plan = plan.String()
		tr = jtr
		if stmt.Agg != nil {
			res.Groups, err = aggregateTraced(tr, func() ([]query.Group, error) {
				return query.AggregatePairs(*stmt.Agg, pairs)
			})
			return res, tr, err
		}
		if pairs == nil {
			pairs = []query.JoinMatch{}
		}
		res.Pairs = pairs
		return res, tr, nil
	}
	ms, plan, qtr, err := e.ExecuteTraced(stmt.Query)
	if err != nil {
		return Result{}, nil, err
	}
	res.Plan = plan.String()
	tr = qtr
	if stmt.Agg != nil {
		res.Groups, err = aggregateTraced(tr, func() ([]query.Group, error) {
			return query.AggregateMatches(*stmt.Agg, ms)
		})
		return res, tr, err
	}
	if ms == nil {
		ms = []query.Match{}
	}
	res.Matches = ms
	return res, tr, nil
}

// aggregateTraced runs the fold and appends its timing to the trace.
func aggregateTraced(tr *query.Trace, fold func() ([]query.Group, error)) ([]query.Group, error) {
	t0 := time.Now()
	groups, err := fold()
	ns := time.Since(t0).Nanoseconds()
	tr.Stages = append(tr.Stages, query.TraceStage{Name: "aggregate", Ns: ns, Rows: len(groups)})
	tr.TotalNs += ns
	return groups, err
}

// ---- lexer ----

type tokKind int

const (
	tokWord   tokKind = iota // bare word: keyword, value, number, duration
	tokString                // "quoted value"
	tokPunct                 // ( ) , . = < <=
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// isWordRune reports whether r may appear in a bare word. The set covers
// identifiers, numbers, durations (1h30m) and common ids (u1-T0) — anything
// richer (RFC 3339 timestamps, values with spaces) must be quoted.
func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == ':'
}

func lex(src string) ([]token, error) {
	var toks []token
	rs := []rune(src)
	for i := 0; i < len(rs); {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '"':
			j := i + 1
			for j < len(rs) && rs[j] != '"' {
				j++
			}
			if j == len(rs) {
				return nil, fmt.Errorf("lang: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: string(rs[i+1 : j]), pos: i})
			i = j + 1
		case r == '<':
			if i+1 < len(rs) && rs[i+1] == '=' {
				toks = append(toks, token{kind: tokPunct, text: "<=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokPunct, text: "<", pos: i})
				i++
			}
		case r == '(' || r == ')' || r == ',' || r == '.' || r == '=':
			toks = append(toks, token{kind: tokPunct, text: string(r), pos: i})
			i++
		case isWordRune(r) || r == '+':
			j := i
			for j < len(rs) && (isWordRune(rs[j]) || rs[j] == '+' || rs[j] == '.') {
				// A '.' joins a word only between digits (floats like 0.5);
				// elsewhere it is the ann-key separator.
				if rs[j] == '.' && !(j > i && unicode.IsDigit(rs[j-1]) && j+1 < len(rs) && unicode.IsDigit(rs[j+1])) {
					break
				}
				j++
			}
			toks = append(toks, token{kind: tokWord, text: string(rs[i:j]), pos: i})
			i = j
		default:
			return nil, fmt.Errorf("lang: unexpected character %q at offset %d", r, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(rs)})
	return toks, nil
}

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// keyword reports whether the next token is the given keyword
// (case-insensitive bare word) and consumes it if so.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokWord && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

// expectKeyword consumes the keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		t := p.peek()
		return fmt.Errorf("lang: expected %q at offset %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

// expectPunct consumes the punctuation token or fails.
func (p *parser) expectPunct(s string) error {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return nil
	}
	return fmt.Errorf("lang: expected %q at offset %d, got %q", s, t.pos, t.text)
}

// value consumes a bare word or quoted string.
func (p *parser) value() (string, error) {
	t := p.next()
	if t.kind != tokWord && t.kind != tokString {
		return "", fmt.Errorf("lang: expected a value at offset %d, got %q", t.pos, t.text)
	}
	return t.text, nil
}

// number consumes a numeric bare word.
func (p *parser) number() (float64, error) {
	t := p.next()
	if t.kind != tokWord {
		return 0, fmt.Errorf("lang: expected a number at offset %d, got %q", t.pos, t.text)
	}
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("lang: bad number %q at offset %d", t.text, t.pos)
	}
	return f, nil
}

// intNumber consumes a non-negative integer bare word.
func (p *parser) intNumber() (int, error) {
	t := p.next()
	n, err := strconv.Atoi(t.text)
	if t.kind != tokWord || err != nil {
		return 0, fmt.Errorf("lang: expected an integer at offset %d, got %q", t.pos, t.text)
	}
	return n, nil
}

// annKey parses the ".key" suffix after the "ann" keyword.
func (p *parser) annKey() (string, error) {
	if err := p.expectPunct("."); err != nil {
		return "", err
	}
	t := p.next()
	if t.kind != tokWord {
		return "", fmt.Errorf("lang: expected an annotation key at offset %d, got %q", t.pos, t.text)
	}
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	var stmt Statement
	left, err := p.parseSource()
	if err != nil {
		return stmt, err
	}
	if p.keyword("join") {
		right, err := p.parseSource()
		if err != nil {
			return stmt, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return stmt, err
		}
		var on query.JoinOn
		for {
			if err := p.parseCond(&on); err != nil {
				return stmt, err
			}
			if !p.keyword("and") {
				break
			}
		}
		stmt.Join = &query.Join{Left: left, Right: right, On: on}
	} else {
		stmt.Query = left
	}
	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return stmt, err
		}
		agg, err := p.parseAggregate()
		if err != nil {
			return stmt, err
		}
		stmt.Agg = agg
	}
	if p.keyword("limit") {
		n, err := p.intNumber()
		if err != nil {
			return stmt, err
		}
		if stmt.Join != nil {
			stmt.Join.Limit = n
		} else {
			stmt.Query.Limit = n
		}
	}
	if t := p.peek(); t.kind != tokEOF {
		return stmt, fmt.Errorf("lang: trailing input at offset %d: %q", t.pos, t.text)
	}
	// Validate everything now: a parsed statement must be executable as is.
	if stmt.Join != nil {
		if err := stmt.Join.On.Validate(); err != nil {
			return stmt, err
		}
		if stmt.Join.Limit < 0 {
			return stmt, errors.New("lang: negative limit")
		}
	}
	if stmt.Agg != nil {
		if err := stmt.Agg.Validate(); err != nil {
			return stmt, err
		}
	}
	return stmt, nil
}

// parseSource parses one side of the statement into a validated Query.
func (p *parser) parseSource() (query.Query, error) {
	var opts []query.Option
	switch {
	case p.keyword("stops"):
		opts = append(opts, query.OnlyStops())
	case p.keyword("moves"):
		opts = append(opts, query.OnlyMoves())
	case p.keyword("episodes"):
		// both kinds
	default:
		t := p.peek()
		return query.Query{}, fmt.Errorf("lang: expected stops, moves or episodes at offset %d, got %q", t.pos, t.text)
	}
	if p.keyword("where") {
		for {
			opt, err := p.parsePred()
			if err != nil {
				return query.Query{}, err
			}
			opts = append(opts, opt)
			if !p.keyword("and") {
				break
			}
		}
	}
	return query.Build(opts...)
}

// parsePred parses one where-clause predicate into a builder option.
func (p *parser) parsePred() (query.Option, error) {
	t := p.next()
	if t.kind != tokWord {
		return nil, fmt.Errorf("lang: expected a predicate at offset %d, got %q", t.pos, t.text)
	}
	eqValue := func() (string, error) {
		if err := p.expectPunct("="); err != nil {
			return "", err
		}
		return p.value()
	}
	switch strings.ToLower(t.text) {
	case "object":
		v, err := eqValue()
		return query.ForObject(v), err
	case "trajectory":
		v, err := eqValue()
		return query.ForTrajectory(v), err
	case "interpretation":
		v, err := eqValue()
		return query.InInterpretation(v), err
	case "ann":
		key, err := p.annKey()
		if err != nil {
			return nil, err
		}
		v, err := eqValue()
		return query.WithAnnotation(key, v), err
	case "from", "to":
		v, err := eqValue()
		if err != nil {
			return nil, err
		}
		ts, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return nil, fmt.Errorf("lang: %s wants an RFC 3339 timestamp: %w", t.text, err)
		}
		if strings.EqualFold(t.text, "from") {
			return query.Since(ts), nil
		}
		return query.Until(ts), nil
	case "near":
		nums, err := p.parenNumbers(3)
		if err != nil {
			return nil, err
		}
		return query.NearPoint(geo.Pt(nums[0], nums[1]), nums[2]), nil
	case "window":
		nums, err := p.parenNumbers(4)
		if err != nil {
			return nil, err
		}
		return query.InWindow(geo.NewRect(geo.Pt(nums[0], nums[1]), geo.Pt(nums[2], nums[3]))), nil
	}
	return nil, fmt.Errorf("lang: unknown predicate %q at offset %d", t.text, t.pos)
}

// parenNumbers parses "(" NUM { "," NUM } ")" with exactly n numbers.
func (p *parser) parenNumbers(n int) ([]float64, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		f, err := p.number()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, p.expectPunct(")")
}

// parseCond parses one join condition into the JoinOn under construction.
func (p *parser) parseCond(on *query.JoinOn) error {
	t := p.next()
	if t.kind != tokWord {
		return fmt.Errorf("lang: expected a join condition at offset %d, got %q", t.pos, t.text)
	}
	switch strings.ToLower(t.text) {
	case "within":
		v := p.next()
		if v.kind != tokWord {
			return fmt.Errorf("lang: within wants a duration at offset %d, got %q", v.pos, v.text)
		}
		d, err := time.ParseDuration(v.text)
		if err != nil {
			return fmt.Errorf("lang: bad duration %q: %w", v.text, err)
		}
		on.Within = d
		return nil
	case "overlaps":
		on.TimeOverlap = true
		return nil
	case "distance":
		op := p.next()
		if op.kind != tokPunct || (op.text != "<" && op.text != "<=") {
			return fmt.Errorf("lang: distance wants < or <= at offset %d, got %q", op.pos, op.text)
		}
		f, err := p.number()
		if err != nil {
			return err
		}
		on.MaxDistance = f
		return nil
	case "same":
		switch {
		case p.keyword("object"):
			on.SameObject = true
		case p.keyword("place"):
			on.SamePlace = true
		case p.keyword("ann"):
			key, err := p.annKey()
			if err != nil {
				return err
			}
			on.SameAnnKey = key
		default:
			v := p.peek()
			return fmt.Errorf("lang: same wants object, place or ann.<key> at offset %d, got %q", v.pos, v.text)
		}
		return nil
	case "distinct":
		if err := p.expectKeyword("objects"); err != nil {
			return err
		}
		on.DistinctObjects = true
		return nil
	}
	return fmt.Errorf("lang: unknown join condition %q at offset %d", t.text, t.pos)
}

// parseAggregate parses the group-by clause after "group by".
func (p *parser) parseAggregate() (*query.Aggregate, error) {
	agg := &query.Aggregate{}
	t := p.next()
	if t.kind != tokWord {
		return nil, fmt.Errorf("lang: expected a grouping dimension at offset %d, got %q", t.pos, t.text)
	}
	switch strings.ToLower(t.text) {
	case "object":
		agg.By = query.DimObject
	case "trajectory":
		agg.By = query.DimTrajectory
	case "place":
		agg.By = query.DimPlace
	case "kind":
		agg.By = query.DimKind
	case "ann":
		key, err := p.annKey()
		if err != nil {
			return nil, err
		}
		agg.By = query.DimAnnotation
		agg.AnnKey = key
	default:
		return nil, fmt.Errorf("lang: unknown grouping dimension %q at offset %d", t.text, t.pos)
	}
	switch {
	case p.keyword("count"):
		agg.Metric = query.MetricCount
	case p.keyword("distinct"):
		if err := p.expectKeyword("objects"); err != nil {
			return nil, err
		}
		agg.Metric = query.MetricDistinctObjects
	case p.keyword("duration"):
		agg.Metric = query.MetricDuration
	}
	if p.keyword("top") {
		k, err := p.intNumber()
		if err != nil {
			return nil, err
		}
		agg.K = k
	}
	return agg, nil
}
