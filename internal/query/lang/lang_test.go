package lang

import (
	"strings"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/query"
	"semitri/internal/store"
)

var t0 = time.Date(2010, 3, 15, 8, 0, 0, 0, time.UTC)

// TestParseSingleTable pins the compilation of single-table statements onto
// the typed Query.
func TestParseSingleTable(t *testing.T) {
	stmt, err := Parse(`stops where object = u1 and ann.poi_category = "item sale"` +
		` and from = 2010-03-15T08:00:00Z and near(100, 200, 50.5) limit 3`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Join != nil || stmt.Agg != nil {
		t.Fatalf("single-table statement parsed as join/aggregate: %+v", stmt)
	}
	q := stmt.Query
	if q.Kind == nil || *q.Kind != episode.Stop {
		t.Fatalf("stops did not pin the kind: %+v", q)
	}
	if q.ObjectID != "u1" {
		t.Fatalf("object predicate: %+v", q)
	}
	if q.AnnKey != "poi_category" || q.AnnValue != "item sale" {
		t.Fatalf("quoted annotation predicate: %+v", q)
	}
	if !q.From.Equal(t0) {
		t.Fatalf("bare-word RFC 3339 timestamp: got %v", q.From)
	}
	if q.Near == nil || q.Near.X != 100 || q.Near.Y != 200 || q.Radius != 50.5 {
		t.Fatalf("near predicate: %+v", q)
	}
	if q.Limit != 3 {
		t.Fatalf("limit: %+v", q)
	}

	moves, err := Parse("moves where window(0, 0, 1000, 1000) and trajectory = u1-T0")
	if err != nil {
		t.Fatal(err)
	}
	mq := moves.Query
	if mq.Kind == nil || *mq.Kind != episode.Move || mq.TrajectoryID != "u1-T0" {
		t.Fatalf("moves statement: %+v", mq)
	}
	if mq.Window == nil || *mq.Window != geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)) {
		t.Fatalf("window predicate: %+v", mq)
	}

	all, err := Parse("episodes")
	if err != nil {
		t.Fatal(err)
	}
	if all.Query.Kind != nil {
		t.Fatalf("episodes must match both kinds: %+v", all.Query)
	}
}

// TestParseJoinAggregate pins the canonical co-location statement.
func TestParseJoinAggregate(t *testing.T) {
	stmt, err := Parse("stops join stops on distance <= 200 and within 1h" +
		" and distinct objects group by object distinct objects top 10")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Join == nil {
		t.Fatal("join statement did not produce a Join")
	}
	on := stmt.Join.On
	if on.MaxDistance != 200 || on.Within != time.Hour || !on.DistinctObjects {
		t.Fatalf("join predicate: %+v", on)
	}
	if stmt.Agg == nil || stmt.Agg.By != query.DimObject ||
		stmt.Agg.Metric != query.MetricDistinctObjects || stmt.Agg.K != 10 {
		t.Fatalf("aggregate clause: %+v", stmt.Agg)
	}

	more, err := Parse(`moves join moves on same ann.road_name and overlaps` +
		` and same object group by ann.road_name duration limit 5`)
	if err != nil {
		t.Fatal(err)
	}
	on = more.Join.On
	if on.SameAnnKey != "road_name" || !on.TimeOverlap || !on.SameObject {
		t.Fatalf("join predicate: %+v", on)
	}
	if more.Join.Limit != 5 {
		t.Fatalf("limit must land on the join: %+v", more.Join)
	}
	if more.Agg.By != query.DimAnnotation || more.Agg.AnnKey != "road_name" ||
		more.Agg.Metric != query.MetricDuration {
		t.Fatalf("aggregate clause: %+v", more.Agg)
	}
}

// TestParseErrors checks that malformed statements fail at parse time with a
// positioned error, including statements that lex fine but validate badly.
func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"tuples",                                // unknown source
		"stops where",                           // dangling where
		"stops where object u1",                 // missing =
		"stops where color = red",               // unknown predicate
		"stops where from = yesterday",          // not RFC 3339
		"stops where near(1, 2)",                // arity
		"stops join stops",                      // missing on
		"stops join stops on distance = 200",    // = is not an ordering
		"stops join stops on same object",       // no pairing clause
		"stops join stops on within 1h extra",   // trailing input
		"stops join stops on within -1h",        // negative duration
		"stops group by city",                   // unknown dimension
		"stops group by ann",                    // ann without key
		"stops group by object top -1",          // negative top-K
		"stops limit 2 limit 3",                 // trailing input
		`stops where ann.k = "unterminated`,     // lexer error
		"stops where object = u1 and",           // dangling and
		"stops join stops on overlaps and same", // dangling same
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

// seedEngine stores a small two-object workload: both objects stop at the
// same spot around the same time (the co-location pair), plus a far-away
// stop that must never pair.
func seedEngine(t *testing.T) *query.Engine {
	t.Helper()
	st := store.New()
	e := query.NewEngine(st)
	mk := func(obj, traj string, at time.Time, center geo.Point, cat string) {
		ep := &episode.Episode{
			Kind: episode.Stop, Start: at, End: at.Add(30 * time.Minute),
			Center: center, Bounds: geo.RectAround(center, 30),
		}
		tp := &core.EpisodeTuple{Kind: episode.Stop, TimeIn: at, TimeOut: at.Add(30 * time.Minute), Episode: ep}
		tp.Annotations.Add(core.Annotation{Key: core.AnnPOICategory, Value: cat, Confidence: 0.9, Source: "test"})
		if err := st.AppendStructuredTuples(traj, obj, query.DefaultInterpretation, tp); err != nil {
			t.Fatal(err)
		}
	}
	mk("a", "a-T0", t0, geo.Pt(100, 100), "restaurant")
	mk("b", "b-T0", t0.Add(20*time.Minute), geo.Pt(150, 100), "restaurant")
	mk("c", "c-T0", t0, geo.Pt(5000, 5000), "office")
	return e
}

// TestRunShapes runs each statement shape end-to-end: exactly one of
// Matches/Pairs/Groups is produced (never nil), and the plan is echoed.
func TestRunShapes(t *testing.T) {
	e := seedEngine(t)

	matches, err := Run(e, "stops where ann.poi_category = restaurant")
	if err != nil {
		t.Fatal(err)
	}
	if matches.Matches == nil || matches.Pairs != nil || matches.Groups != nil {
		t.Fatalf("single-table shape: %+v", matches)
	}
	if len(matches.Matches) != 2 || matches.Plan == "" {
		t.Fatalf("expected 2 restaurant stops and a plan, got %+v", matches)
	}

	pairs, err := Run(e, "stops join stops on distance <= 200 and within 1h and distinct objects")
	if err != nil {
		t.Fatal(err)
	}
	if pairs.Pairs == nil || pairs.Matches != nil || pairs.Groups != nil {
		t.Fatalf("join shape: %+v", pairs)
	}
	// a~b pair both ways; c is 7km away.
	if len(pairs.Pairs) != 2 {
		t.Fatalf("expected the a~b pair both ways, got %d pairs", len(pairs.Pairs))
	}
	for _, p := range pairs.Pairs {
		if p.Left.Ref.ObjectID == "c" || p.Right.Ref.ObjectID == "c" {
			t.Fatalf("far-away stop paired: %+v", p)
		}
	}
	if !strings.Contains(pairs.Plan, "build=") || !strings.Contains(pairs.Plan, "probe=") {
		t.Fatalf("join plan not echoed: %q", pairs.Plan)
	}

	groups, err := Run(e, "stops join stops on distance <= 200 and within 1h"+
		" and distinct objects group by object distinct objects top 10")
	if err != nil {
		t.Fatal(err)
	}
	if groups.Groups == nil || groups.Matches != nil || groups.Pairs != nil {
		t.Fatalf("aggregate shape: %+v", groups)
	}
	if len(groups.Groups) != 2 {
		t.Fatalf("expected groups for a and b, got %+v", groups.Groups)
	}
	for _, g := range groups.Groups {
		if g.Value != 1 {
			t.Fatalf("each object co-locates with exactly one other, got %+v", g)
		}
	}

	empty, err := Run(e, "stops join stops on distance <= 1 and within 1s and distinct objects")
	if err != nil {
		t.Fatal(err)
	}
	if empty.Pairs == nil || len(empty.Pairs) != 0 {
		t.Fatalf("empty join must keep its shape (non-nil Pairs): %+v", empty)
	}

	if _, err := Run(e, "stops join stops on"); err == nil {
		t.Fatal("Run accepted a malformed statement")
	}
}

// TestParseQuery pins the standing-query subset: single-table statements
// compile, while joins, aggregations and limits are rejected.
func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("stops where window(0, 0, 500, 500) and ann.poi_category = park")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind == nil || *q.Kind != episode.Stop || q.Window == nil || q.AnnKey != "poi_category" {
		t.Fatalf("compiled query: %+v", q)
	}
	for _, src := range []string{
		"stops join stops on distance <= 200 and distinct objects",
		"stops group by object count",
		"stops limit 5",
		"stops where object =",
	} {
		if _, err := ParseQuery(src); err == nil {
			t.Fatalf("ParseQuery(%q) accepted a non-standing statement", src)
		}
	}
}
