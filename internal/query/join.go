package query

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semitri/internal/obs"
)

// JoinOn is the pairing predicate of a Join: the conjunction of the enabled
// clauses below, evaluated over a (left, right) pair of episode tuples. At
// least one of the pairing clauses (time, distance, place, annotation) must
// be enabled; SameObject/DistinctObjects only constrain which objects may
// pair and cannot stand alone.
type JoinOn struct {
	// TimeOverlap requires the two episodes' closed time intervals to
	// overlap (touching counts).
	TimeOverlap bool
	// Within requires the two intervals to come within the given gap of
	// each other (overlap counts as a zero gap). It subsumes TimeOverlap.
	Within time.Duration
	// MaxDistance requires both episodes to have geometry and their centres
	// to lie within this many metres of each other. Zero disables.
	MaxDistance float64
	// SamePlace requires both tuples to link to the same, non-empty
	// semantic place.
	SamePlace bool
	// SameAnnKey requires both tuples to carry the same, non-empty value
	// for this annotation key (e.g. road_name: move episodes sharing a
	// road segment). Empty disables.
	SameAnnKey string
	// SameObject restricts pairs to episodes of the same moving object.
	SameObject bool
	// DistinctObjects restricts pairs to episodes of different moving
	// objects (the co-location shape).
	DistinctObjects bool
}

// Validate checks the structural invariants of the join predicate.
func (on JoinOn) Validate() error {
	if on.Within < 0 {
		return errors.New("query: join Within must not be negative")
	}
	if on.MaxDistance < 0 {
		return errors.New("query: join MaxDistance must not be negative")
	}
	if !on.timeConstrained() && on.MaxDistance == 0 && !on.SamePlace && on.SameAnnKey == "" {
		return errors.New("query: join needs at least one pairing clause (time, distance, place or annotation)")
	}
	if on.SameObject && on.DistinctObjects {
		return errors.New("query: join cannot require both same and distinct objects")
	}
	return nil
}

// timeConstrained reports whether the predicate has a temporal clause.
func (on *JoinOn) timeConstrained() bool { return on.TimeOverlap || on.Within > 0 }

// pairMatches evaluates the full predicate on a resolved pair. This is the
// authoritative check: candidate gathering may over-approximate (see
// probeQuery), never the other way around.
func (on *JoinOn) pairMatches(l, r *Match) bool {
	if on.SameObject && l.Ref.ObjectID != r.Ref.ObjectID {
		return false
	}
	if on.DistinctObjects && l.Ref.ObjectID == r.Ref.ObjectID {
		return false
	}
	if on.timeConstrained() {
		if l.Tuple.TimeIn.After(r.Tuple.TimeOut.Add(on.Within)) ||
			r.Tuple.TimeIn.After(l.Tuple.TimeOut.Add(on.Within)) {
			return false
		}
	}
	if on.MaxDistance > 0 {
		le, re := l.Tuple.Episode, r.Tuple.Episode
		if le == nil || re == nil || le.Center.DistanceTo(re.Center) > on.MaxDistance {
			return false
		}
	}
	if on.SamePlace {
		lp := l.Tuple.PlaceID()
		if lp == "" || lp != r.Tuple.PlaceID() {
			return false
		}
	}
	if k := on.SameAnnKey; k != "" {
		lv := l.Tuple.Annotations.Value(k)
		if lv == "" || lv != r.Tuple.Annotations.Value(k) {
			return false
		}
	}
	return true
}

// Join is a typed two-sided join: the pairs of (Left, Right) results that
// satisfy On. Join sides must not set Limit (a per-side cap has no
// well-defined meaning under probe execution); Limit below caps the number
// of result pairs after the deterministic sort.
type Join struct {
	Left, Right Query
	On          JoinOn
	Limit       int
}

// JoinMatch is one join result pair. Left always comes from Join.Left and
// Right from Join.Right, regardless of which side the planner built.
type JoinMatch struct {
	Left  Match
	Right Match
}

// less is the canonical pair order: by the left match, then the right.
func (a *JoinMatch) less(b *JoinMatch) bool {
	if a.Left.less(&b.Left) {
		return true
	}
	if b.Left.less(&a.Left) {
		return false
	}
	return a.Right.less(&b.Right)
}

// Side names one side of a join.
type Side string

const (
	SideLeft  Side = "left"
	SideRight Side = "right"
)

// JoinPlan records the join planner's decision: the side it chose to
// materialise fully (the build side — always the one with the smaller
// estimated cardinality), that side's single-table plan, both sides'
// estimates, and, after execution, a histogram of the access paths the
// per-row probes of the other side went through.
type JoinPlan struct {
	// BuildSide is the side executed first and materialised in full.
	BuildSide Side
	// Build is the single-table plan of the build side.
	Build Plan
	// LeftEstimate/RightEstimate are the chosen-path candidate estimates
	// the build decision compared.
	LeftEstimate  int
	RightEstimate int
	// Workers is the probe worker-pool size the plan calls for, derived from
	// the engine's parallelism and the build-side estimate (1 = serial).
	// After execution it reports the pool size actually used.
	Workers int
	// ProbePaths counts, per access path, how many per-row probes of the
	// other side executed through it. Nil when the plan was not executed
	// (ExplainJoin).
	ProbePaths map[Path]int
	// WorkerProbes is the per-worker probe histogram of an executed parallel
	// join: WorkerProbes[w] counts the build rows worker w probed. Rows are
	// handed out dynamically, so the spread shows the pool's load balance.
	// Nil when the plan was not executed or execution was serial.
	WorkerProbes []int
}

// String renders the join plan compactly, e.g.
// "build=left(*annotation≈3 full-scan≈120) probe=right≈80 via object-time×3".
func (p JoinPlan) String() string {
	probe := SideRight
	probeEst := p.RightEstimate
	if p.BuildSide == SideRight {
		probe = SideLeft
		probeEst = p.LeftEstimate
	}
	var b strings.Builder
	fmt.Fprintf(&b, "build=%s(%s) probe=%s≈%d", p.BuildSide, p.Build, probe, probeEst)
	if p.Workers > 1 {
		fmt.Fprintf(&b, " workers=%d", p.Workers)
	}
	if len(p.WorkerProbes) > 0 {
		b.WriteString(" probes/worker=")
		for i, n := range p.WorkerProbes {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", n)
		}
	}
	if len(p.ProbePaths) > 0 {
		paths := make([]Path, 0, len(p.ProbePaths))
		for path := range p.ProbePaths {
			paths = append(paths, path)
		}
		sort.Slice(paths, func(i, j int) bool { return pathRank(paths[i]) < pathRank(paths[j]) })
		b.WriteString(" via")
		for _, path := range paths {
			fmt.Fprintf(&b, " %s×%d", path, p.ProbePaths[path])
		}
	}
	return b.String()
}

// validateJoin normalizes both sides and checks every invariant of the join.
func validateJoin(j *Join) (left, right Query, err error) {
	left, right = j.Left.normalized(), j.Right.normalized()
	if err := left.Validate(); err != nil {
		return left, right, fmt.Errorf("join left: %w", err)
	}
	if err := right.Validate(); err != nil {
		return left, right, fmt.Errorf("join right: %w", err)
	}
	if left.Limit != 0 || right.Limit != 0 {
		return left, right, errors.New("query: join sides must not set Limit; use Join.Limit for the pair cap")
	}
	if j.Limit < 0 {
		return left, right, errors.New("query: negative join limit")
	}
	if err := j.On.Validate(); err != nil {
		return left, right, err
	}
	return left, right, nil
}

// planJoin decides the build side: both sides are planned as single-table
// queries and the one whose chosen path promises fewer candidates is
// materialised first, so the (more expensive) per-row probing happens from
// the smaller set into the larger one's indexes. Ties build left.
func (e *Engine) planJoin(left, right Query) JoinPlan {
	lp, rp := e.plan(left), e.plan(right)
	jp := JoinPlan{
		BuildSide:     SideLeft,
		Build:         lp,
		LeftEstimate:  lp.Estimates[lp.Path],
		RightEstimate: rp.Estimates[rp.Path],
	}
	if jp.RightEstimate < jp.LeftEstimate {
		jp.BuildSide = SideRight
		jp.Build = rp
	}
	// The probe pool is sized by the build estimate: one row = one probe task.
	jp.Workers = e.workersFor(jp.Build.Estimates[jp.Build.Path])
	return jp
}

// ExplainJoin plans the join without executing it.
func (e *Engine) ExplainJoin(j Join) (JoinPlan, error) {
	left, right, err := validateJoin(&j)
	if err != nil {
		return JoinPlan{}, err
	}
	return e.planJoin(left, right), nil
}

// ExecuteJoin plans and runs the join, returning pairs in the canonical
// (left, right) order. See ExecuteJoinExplained for the executed plan.
func (e *Engine) ExecuteJoin(j Join) ([]JoinMatch, error) {
	out, _, err := e.ExecuteJoinExplained(j)
	return out, err
}

// ExecuteJoinExplained runs the join and also returns the plan it executed,
// probe-path histogram (and, when parallel, per-worker probe counts)
// included.
//
// Execution materialises the build side through its own planned access path,
// then probes the other side once per build row with a derived query: the
// probe side's predicates tightened by what the join predicate pins for that
// row (the row's time interval widened by Within, a radius disc of
// MaxDistance around the row's centre, the row's object id or annotation
// value). Each probe plans independently, so it runs through the time,
// spatial or annotation index the tightened predicates make available — a
// nested full scan only happens when the store is small enough that the
// planner prices a scan below every index. Probed candidates are
// re-verified against the probe side's original predicates and the full
// pair predicate, so over-approximation in the derivation never leaks into
// results.
//
// Build rows are independent probe tasks, so they fan out over a bounded
// worker pool (JoinPlan.Workers; serial under the engine's threshold). Rows
// are handed out dynamically for load balance, each worker appends pairs to
// its own buffer, and per-row spans re-assemble the pairs in build-row order
// before the canonical sort — the result is byte-identical to serial
// execution at any worker count.
func (e *Engine) ExecuteJoinExplained(j Join) ([]JoinMatch, JoinPlan, error) {
	return e.executeJoin(j, nil)
}

// executeJoin is the shared implementation behind ExecuteJoinExplained and
// ExecuteJoinTraced: tr, when non-nil, collects the build sub-trace, stage
// timings and the probe fan-out. Probe rows never see tr — the per-row hot
// path stays trace-free.
func (e *Engine) executeJoin(j Join, tr *Trace) ([]JoinMatch, JoinPlan, error) {
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	left, right, err := validateJoin(&j)
	if err != nil {
		return nil, JoinPlan{}, err
	}
	jp := e.planJoin(left, right)
	if tr != nil {
		tr.PlanNs = time.Since(t0).Nanoseconds()
	}

	build, probe := left, right
	if jp.BuildSide == SideRight {
		build, probe = right, left
	}
	var btr *Trace
	var t1 time.Time
	if tr != nil {
		btr = &Trace{Kind: "query", Plan: jp.Build.String(), Path: string(jp.Build.Path)}
		tr.Build = btr
		t1 = time.Now()
	}
	rows := e.executeBuf(&build, jp.Build.Path, nil, 0, btr)
	if btr != nil {
		btr.ExecNs = time.Since(t1).Nanoseconds()
		btr.Returned = len(rows)
		tr.stage("build", t1, len(rows))
	}
	workers := e.workersFor(len(rows))
	jp.Workers = workers

	var t2 time.Time
	if tr != nil {
		t2 = time.Now()
	}
	var out []JoinMatch
	var hist [numPaths]int
	probes := 0
	if workers <= 1 {
		w := probeWorker{e: e}
		for i := range rows {
			w.probeRow(&rows[i], &probe, &j.On, jp.BuildSide)
		}
		out = w.pairs
		hist = w.hist
		probes = w.probes
		obs.JoinWorkerProbes.Observe(float64(w.probes))
	} else {
		pool := make([]probeWorker, workers)
		spans := make([]pairSpan, len(rows))
		var next atomic.Int64
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				w := &pool[wi]
				w.e = e
				for {
					ri := int(next.Add(1)) - 1
					if ri >= len(rows) {
						return
					}
					lo, hi := w.probeRow(&rows[ri], &probe, &j.On, jp.BuildSide)
					spans[ri] = pairSpan{worker: wi, lo: lo, hi: hi}
				}
			}(wi)
		}
		wg.Wait()
		total := 0
		jp.WorkerProbes = make([]int, workers)
		for wi := range pool {
			total += len(pool[wi].pairs)
			jp.WorkerProbes[wi] = pool[wi].probes
			probes += pool[wi].probes
			obs.JoinWorkerProbes.Observe(float64(pool[wi].probes))
			for r := 0; r < numPaths; r++ {
				hist[r] += pool[wi].hist[r]
			}
		}
		if total > 0 {
			out = make([]JoinMatch, 0, total)
			for _, sp := range spans {
				out = append(out, pool[sp.worker].pairs[sp.lo:sp.hi]...)
			}
		}
	}
	jp.ProbePaths = map[Path]int{}
	for r := 0; r < numPaths; r++ {
		if hist[r] > 0 {
			jp.ProbePaths[rankedPaths[r]] = hist[r]
		}
	}
	obs.JoinQueries.Inc()
	obs.JoinProbes.Add(int64(probes))
	tr.stage("probe", t2, len(out))
	var t3 time.Time
	if tr != nil {
		t3 = time.Now()
	}
	sort.Slice(out, func(i, k int) bool { return out[i].less(&out[k]) })
	if j.Limit > 0 && len(out) > j.Limit {
		out = out[:j.Limit]
	}
	if tr != nil {
		tr.stage("sort-limit", t3, len(out))
		tr.Plan = jp.String()
		tr.Workers = jp.Workers
		tr.WorkerProbes = jp.WorkerProbes
		tr.ProbePaths = make(map[string]int, len(jp.ProbePaths))
		for path, n := range jp.ProbePaths {
			tr.ProbePaths[string(path)] = n
		}
		tr.Candidates = probes
		tr.Returned = len(out)
		tr.ExecNs = time.Since(t1).Nanoseconds()
		tr.TotalNs = time.Since(t0).Nanoseconds()
	}
	return out, jp, nil
}

// pairSpan locates one build row's pairs inside its worker's buffer.
type pairSpan struct {
	worker, lo, hi int
}

// probeWorker is one probe-pool worker's private state: the pair buffer its
// rows append into, a reusable match buffer for probe execution, a reusable
// estimates block for lean planning, and its share of the probe-path
// histogram. Nothing here is shared, so the probe loop runs lock-free and,
// at steady state, allocation-free.
type probeWorker struct {
	e      *Engine
	pairs  []JoinMatch
	mbuf   []Match
	est    estimates
	hist   [numPaths]int
	probes int
}

// probeRow derives, plans and executes the probe of one build row, appending
// the verified pairs to w.pairs and returning their span. Probe execution is
// capped at one worker: the fan-out across rows already owns the pool, so
// per-probe parallelism would only oversubscribe it.
func (w *probeWorker) probeRow(b *Match, probe *Query, on *JoinOn, buildSide Side) (lo, hi int) {
	lo = len(w.pairs)
	pq, ok := probeQuery(*probe, b, on)
	if !ok {
		return lo, lo // the row can pair with nothing (no geometry, contradiction)
	}
	path := w.e.planLean(&pq, &w.est)
	w.hist[pathRank(path)]++
	w.probes++
	w.mbuf = w.e.executeBuf(&pq, path, w.mbuf[:0], 1, nil)
	for i := range w.mbuf {
		c := &w.mbuf[i]
		// The derived query may have replaced a spatial predicate with a
		// tighter disc; re-check the probe side's own predicates exactly.
		if !probe.matches(c.Ref, &c.Tuple) {
			continue
		}
		pair := JoinMatch{Left: *b, Right: *c}
		if buildSide == SideRight {
			pair.Left, pair.Right = *c, *b
		}
		if !on.pairMatches(&pair.Left, &pair.Right) {
			continue
		}
		w.pairs = append(w.pairs, pair)
	}
	return lo, len(w.pairs)
}

// probeQuery derives the per-row probe: the probe side's query tightened by
// the clauses of the join predicate that the build row pins down. The
// derivation must never exclude a tuple the pair predicate would accept —
// every tightening below keeps the derived predicate weaker than (or equal
// to) the corresponding pair clause — but it may include extras; those die
// at the pairMatches re-check. The second return is false when the row
// provably pairs with nothing.
func probeQuery(probe Query, b *Match, on *JoinOn) (Query, bool) {
	pq := probe
	pq.Limit = 0
	if on.timeConstrained() {
		from := b.Tuple.TimeIn.Add(-on.Within)
		to := b.Tuple.TimeOut.Add(on.Within)
		nf, nt := pq.From, pq.To
		if nf.IsZero() || from.After(nf) {
			nf = from
		}
		if nt.IsZero() || to.Before(nt) {
			nt = to
		}
		// Overlap is not containment: when the combined window inverts (the
		// row's reachable window is disjoint from the probe's own), a long
		// episode spanning both windows still pairs. Only adopt the combined
		// window when it is a well-formed interval; otherwise keep the probe's
		// own window and let pairMatches filter.
		if !nt.Before(nf) {
			pq.From, pq.To = nf, nt
		}
	}
	if on.MaxDistance > 0 {
		ep := b.Tuple.Episode
		if ep == nil {
			return pq, false // a spatial join needs geometry on both sides
		}
		c := ep.Center
		switch {
		case pq.Near == nil:
			pq.Near = &c
			pq.Radius = on.MaxDistance
		case pq.Near.DistanceTo(c) > pq.Radius+on.MaxDistance:
			return pq, false // the two discs cannot both hold
		case on.MaxDistance < pq.Radius:
			// Gather through the tighter disc; the original is re-verified
			// by probe.matches on every candidate.
			pq.Near = &c
			pq.Radius = on.MaxDistance
		}
	}
	if on.SameObject {
		if pq.ObjectID != "" && pq.ObjectID != b.Ref.ObjectID {
			return pq, false
		}
		pq.ObjectID = b.Ref.ObjectID
	}
	if k := on.SameAnnKey; k != "" {
		v := b.Tuple.Annotations.Value(k)
		if v == "" {
			return pq, false // the row has no value to share
		}
		switch {
		case pq.AnnKey == "":
			pq.AnnKey, pq.AnnValue = k, v
		case pq.AnnKey == k && pq.AnnValue != v:
			return pq, false // the probe side pins a different value
		}
	}
	return pq, true
}
