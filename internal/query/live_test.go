package query

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/store"
)

// ingestLive streams a randomized workload into the store from several
// goroutines (disjoint objects, honouring the store's per-trajectory
// single-writer contract), exercising all three notification paths: tuple
// appends, in-place annotation merges and whole-interpretation replacements.
func ingestLive(t *testing.T, st *store.Store, seed int64, workers, objectsPerWorker, trajPerObject, tuplesPerTraj int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			categories := []string{"restaurant", "shop", "office", "park", "station"}
			modes := []string{"walk", "bus", "car"}
			for o := 0; o < objectsPerWorker; o++ {
				obj := fmt.Sprintf("u%d", w*objectsPerWorker+o)
				for tj := 0; tj < trajPerObject; tj++ {
					id := fmt.Sprintf("%s-T%d", obj, tj)
					at := t0.Add(time.Duration(tj) * 24 * time.Hour)
					for i := 0; i < tuplesPerTraj; i++ {
						kind := episode.Move
						var anns []core.Annotation
						if i%2 == 0 {
							kind = episode.Stop
							anns = append(anns, ann(core.AnnPOICategory, categories[rng.Intn(len(categories))]))
						} else {
							anns = append(anns, ann(core.AnnTransportMode, modes[rng.Intn(len(modes))]))
						}
						end := at.Add(time.Duration(5+rng.Intn(40)) * time.Minute)
						center := geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
						tp := mkTuple(kind, at, end, center, anns...)
						if err := st.AppendStructuredTuples(id, obj, DefaultInterpretation, tp); err != nil {
							errs[w] = err
							return
						}
						at = end
					}
					// Exercise the in-place update path on one tuple of the
					// trajectory (the streaming close path's merge).
					if err := st.MergeTupleAnnotations(id, DefaultInterpretation, rng.Intn(tuplesPerTraj), nil,
						[]core.Annotation{ann(core.AnnPOICategory, categories[rng.Intn(len(categories))])}); err != nil {
						errs[w] = err
						return
					}
					// Occasionally replace the whole interpretation, retracting
					// earlier content (the standing queries must unmatch it).
					if rng.Intn(4) == 0 {
						repl := &core.StructuredTrajectory{ID: id, ObjectID: obj, Interpretation: DefaultInterpretation}
						for i := 0; i < tuplesPerTraj/2; i++ {
							at := t0.Add(time.Duration(tj)*24*time.Hour + time.Duration(i)*time.Hour)
							repl.Tuples = append(repl.Tuples, mkTuple(episode.Stop, at, at.Add(30*time.Minute),
								geo.Pt(rng.Float64()*2000, rng.Float64()*2000),
								ann(core.AnnPOICategory, categories[rng.Intn(len(categories))])))
						}
						if err := st.PutStructured(repl); err != nil {
							errs[w] = err
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestStandingParityWithEngine is the live pipeline's property test: N
// random standing queries registered before ingestion, fed purely from the
// store's event stream, must report exactly the matched-ref set a quiescent
// engine query computes from the indexes — across appends, in-place updates
// and replacements, with racing ingest goroutines (run under -race).
func TestStandingParityWithEngine(t *testing.T) {
	st := store.NewSharded(8)
	e := NewEngine(st)
	// Central ring sized so evaluation never drops: parity is only promised
	// at drop rate zero (see TestStandingDropsStayGenuine for the lossy case).
	l := NewLive(st, 1<<16)
	defer l.Close()
	st.AttachIndex(store.Tee(e, l.Tap()))

	rng := rand.New(rand.NewSource(99))
	const nStanding = 64
	standing := make([]*Standing, 0, nStanding)
	for i := 0; i < nStanding; i++ {
		s, err := l.Register(randomQuery(rng), 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		standing = append(standing, s)
	}

	ingestLive(t, st, 7, 4, 2, 3, 12)
	l.Sync()

	if d := l.EvalDrops(); d != 0 {
		t.Fatalf("central ring dropped %d events; parity run must be lossless", d)
	}
	for i, s := range standing {
		ms, err := e.Execute(s.Query())
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("standing %d (%+v)", i, s.Query())
		sameRefSet(t, label, s.Matched(), gotRefs(ms))
		if s.Drops() == 0 {
			// Lossless delivery: folding the notification stream must land on
			// the same set (match/unmatch transitions balance exactly).
			folded := map[store.TupleRef]bool{}
			for _, n := range s.Sub().Drain(nil) {
				switch n.Kind {
				case NotifyMatch:
					if folded[n.Match.Ref] {
						t.Fatalf("%s: double match for %+v", label, n.Match.Ref)
					}
					folded[n.Match.Ref] = true
				case NotifyUnmatch:
					if !folded[n.Match.Ref] {
						t.Fatalf("%s: unmatch without match for %+v", label, n.Match.Ref)
					}
					delete(folded, n.Match.Ref)
				}
			}
			refs := make([]store.TupleRef, 0, len(folded))
			for r := range folded {
				refs = append(refs, r)
			}
			sameRefSet(t, label+" (notification fold)", refs, gotRefs(ms))
		}
	}
}

// TestStandingDropsStayGenuine forces heavy backpressure (tiny rings) and
// asserts the weaker guarantee that survives any drop rate: every delivered
// match/update notification carried a tuple that truly satisfied the
// predicate, and the matched set never contains a fabricated ref.
func TestStandingDropsStayGenuine(t *testing.T) {
	st := store.NewSharded(4)
	e := NewEngine(st)
	l := NewLive(st, 4) // tiny central ring: evaluation itself drops
	defer l.Close()
	st.AttachIndex(store.Tee(e, l.Tap()))

	rng := rand.New(rand.NewSource(5))
	q := randomQuery(rng)
	s, err := l.Register(q, 2) // tiny delivery ring: delivery drops too
	if err != nil {
		t.Fatal(err)
	}
	ingestLive(t, st, 11, 4, 2, 2, 10)
	l.Sync()

	qq := s.Query()
	for _, n := range s.Sub().Drain(nil) {
		if n.Kind == NotifyUnmatch {
			continue
		}
		tp := n.Match.Tuple
		if !qq.matches(n.Match.Ref, &tp) {
			t.Fatalf("delivered %s notification does not satisfy the predicate: %+v", n.Kind, n.Match.Ref)
		}
	}
	// Every matched ref must be genuine: resolvable or at least once true.
	// With drops the set may be incomplete but never fabricated — each entry
	// came from a real store event that satisfied the predicate.
	ms, err := e.Execute(qq)
	if err != nil {
		t.Fatal(err)
	}
	engineSet := map[store.TupleRef]bool{}
	for _, m := range ms {
		engineSet[m.Ref] = true
	}
	for _, ref := range s.Matched() {
		if !engineSet[ref] {
			// The ref matched at evaluation time; with no replacements racing
			// after Sync it must still be in the engine's answer unless its
			// content was later replaced. Resolve to check it ever existed.
			if _, ok := st.TupleAt(ref.TrajectoryID, ref.Interpretation, ref.Index); !ok {
				t.Fatalf("matched ref %+v never existed in the store", ref)
			}
		}
	}
}

// TestStandingTransitions walks one ref through match → update → unmatch →
// replacement retraction, checking each notification kind.
func TestStandingTransitions(t *testing.T) {
	st := store.New()
	e := NewEngine(st)
	l := NewLive(st, 64)
	defer l.Close()
	st.AttachIndex(store.Tee(e, l.Tap()))

	s, err := l.Register(Query{AnnKey: core.AnnPOICategory, AnnValue: "park"}, 64)
	if err != nil {
		t.Fatal(err)
	}

	// Append without the annotation: no match.
	tp := mkTuple(episode.Stop, t0, t0.Add(time.Hour), geo.Pt(10, 10))
	if err := st.AppendStructuredTuples("u1-T0", "u1", DefaultInterpretation, tp); err != nil {
		t.Fatal(err)
	}
	l.Sync()
	if n := s.MatchedCount(); n != 0 {
		t.Fatalf("matched %d before the annotation exists", n)
	}

	// Merge the annotation in: the update path must produce a match.
	if err := st.MergeTupleAnnotations("u1-T0", DefaultInterpretation, 0, nil,
		[]core.Annotation{ann(core.AnnPOICategory, "park")}); err != nil {
		t.Fatal(err)
	}
	l.Sync()
	if n := s.MatchedCount(); n != 1 {
		t.Fatalf("matched %d after merge, want 1", n)
	}

	// Replace the interpretation with non-matching content: retraction.
	repl := &core.StructuredTrajectory{ID: "u1-T0", ObjectID: "u1", Interpretation: DefaultInterpretation}
	repl.Tuples = append(repl.Tuples,
		mkTuple(episode.Stop, t0, t0.Add(time.Hour), geo.Pt(10, 10), ann(core.AnnPOICategory, "shop")))
	if err := st.PutStructured(repl); err != nil {
		t.Fatal(err)
	}
	l.Sync()
	if n := s.MatchedCount(); n != 0 {
		t.Fatalf("matched %d after replacement, want 0", n)
	}

	kinds := []string{}
	for _, n := range s.Sub().Drain(nil) {
		kinds = append(kinds, n.Kind)
	}
	want := []string{NotifyMatch, NotifyUnmatch}
	if len(kinds) != len(want) {
		t.Fatalf("notification kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("notification kinds = %v, want %v", kinds, want)
		}
	}
}

func TestLiveRegisterValidation(t *testing.T) {
	st := store.New()
	l := NewLive(st, 16)

	if _, err := l.Register(Query{Limit: 5}, 8); err != ErrStandingLimit {
		t.Fatalf("Limit query: err = %v, want ErrStandingLimit", err)
	}
	if _, err := l.Register(Query{Radius: 10}, 8); err == nil {
		t.Fatal("invalid query accepted")
	}
	s, err := l.Register(Query{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.StandingCount(); got != 1 {
		t.Fatalf("StandingCount = %d, want 1", got)
	}
	s.Close()
	s.Close() // idempotent
	if got := l.StandingCount(); got != 0 {
		t.Fatalf("StandingCount after close = %d, want 0", got)
	}
	l.Close()
	l.Close() // idempotent
	if _, err := l.Register(Query{}, 8); err != ErrLiveClosed {
		t.Fatalf("register after close: err = %v, want ErrLiveClosed", err)
	}
	// Publishing into a closed dispatcher must be a harmless no-op (the tee
	// may still be attached while the store keeps mutating).
	l.Tap().TuplesAppended([]store.TupleEvent{{}})
}
