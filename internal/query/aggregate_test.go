package query

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/store"
)

// bruteGroups is the test's own aggregation: fold rows (key, object,
// duration) with an independent reimplementation of the metric and ranking
// semantics.
func bruteGroups(a Aggregate, rows []struct {
	key string
	obj string
	dur time.Duration
}) []Group {
	count := map[string]int{}
	objects := map[string]map[string]bool{}
	durs := map[string]time.Duration{}
	for _, r := range rows {
		count[r.key]++
		if objects[r.key] == nil {
			objects[r.key] = map[string]bool{}
		}
		objects[r.key][r.obj] = true
		durs[r.key] += r.dur
	}
	var out []Group
	for key, n := range count {
		g := Group{Key: key, Count: n}
		switch a.Metric {
		case "", MetricCount:
			g.Value = float64(n)
		case MetricDistinctObjects:
			g.Value = float64(len(objects[key]))
		case MetricDuration:
			g.Value = durs[key].Seconds()
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Key < out[j].Key
	})
	if a.K > 0 && len(out) > a.K {
		out = out[:a.K]
	}
	return out
}

func sameGroups(t *testing.T, label string, got, want []Group) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups, want %d (%+v vs %+v)", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: group %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestAggregateMatchesBruteForce checks every dimension × metric combination
// over a random workload against the independent fold. The engine's matches
// feed both sides, so this pins the key extraction, the metric accumulation,
// the deterministic ranking and the top-K truncation.
func TestAggregateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st := store.NewSharded(8)
	e := NewEngine(st)
	populate(t, st, 17, 6, 3, 12)

	dims := []Aggregate{
		{By: DimObject},
		{By: DimTrajectory},
		{By: DimKind},
		{By: DimAnnotation, AnnKey: core.AnnPOICategory},
		{By: DimAnnotation, AnnKey: core.AnnTransportMode},
	}
	metrics := []Metric{"", MetricCount, MetricDistinctObjects, MetricDuration}
	for i := 0; i < 24; i++ {
		q := randomQuery(rng)
		ms, err := e.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range dims {
			for _, m := range metrics {
				a := base
				a.Metric = m
				a.K = rng.Intn(4) // 0 = all
				got, err := AggregateMatches(a, ms)
				if err != nil {
					t.Fatal(err)
				}
				var rows []struct {
					key string
					obj string
					dur time.Duration
				}
				for k := range ms {
					mm := &ms[k]
					key, ok := a.key(mm)
					if !ok {
						continue
					}
					rows = append(rows, struct {
						key string
						obj string
						dur time.Duration
					}{key, mm.Ref.ObjectID, mm.Tuple.Duration()})
				}
				sameGroups(t, fmt.Sprintf("query %d by %s/%s metric %q", i, a.By, a.AnnKey, m),
					got, bruteGroups(a, rows))
			}
		}
	}
}

// TestAggregatePairsBruteForce does the same over join results: keys come
// from the left side, distinct objects count the right side, duration is the
// pairwise interval overlap.
func TestAggregatePairsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	st := store.NewSharded(8)
	e := NewEngine(st)
	populate(t, st, 18, 5, 2, 10)

	for i := 0; i < 20; i++ {
		j := Join{Left: randomQuery(rng), Right: randomQuery(rng), On: randomJoinOn(rng)}
		pairs, err := e.ExecuteJoin(j)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Metric{MetricCount, MetricDistinctObjects, MetricDuration} {
			a := Aggregate{By: DimObject, Metric: m, K: rng.Intn(3)}
			got, err := AggregatePairs(a, pairs)
			if err != nil {
				t.Fatal(err)
			}
			var rows []struct {
				key string
				obj string
				dur time.Duration
			}
			for k := range pairs {
				p := &pairs[k]
				rows = append(rows, struct {
					key string
					obj string
					dur time.Duration
				}{p.Left.Ref.ObjectID, p.Right.Ref.ObjectID, overlap(&p.Left.Tuple, &p.Right.Tuple)})
			}
			sameGroups(t, fmt.Sprintf("join %d metric %q", i, m), got, bruteGroups(a, rows))
		}
	}
}

// TestOverlap pins the pairwise interval-overlap arithmetic.
func TestOverlap(t *testing.T) {
	mk := func(in, out int) *core.EpisodeTuple {
		return &core.EpisodeTuple{TimeIn: t0.Add(time.Duration(in) * time.Minute), TimeOut: t0.Add(time.Duration(out) * time.Minute)}
	}
	cases := []struct {
		l, r *core.EpisodeTuple
		want time.Duration
	}{
		{mk(0, 60), mk(30, 90), 30 * time.Minute},
		{mk(30, 90), mk(0, 60), 30 * time.Minute},
		{mk(0, 30), mk(30, 60), 0},                 // touching: zero-length overlap
		{mk(0, 30), mk(40, 60), 0},                 // disjoint
		{mk(0, 100), mk(20, 40), 20 * time.Minute}, // containment
	}
	for i, c := range cases {
		if got := overlap(c.l, c.r); got != c.want {
			t.Errorf("case %d: overlap = %v, want %v", i, got, c.want)
		}
	}
}

// TestAggregateValidate pins the construction-time errors.
func TestAggregateValidate(t *testing.T) {
	bad := []Aggregate{
		{},                                // no dimension
		{By: "city"},                      // unknown dimension
		{By: DimAnnotation},               // ann without key
		{By: DimObject, AnnKey: "x"},      // key on a non-ann dimension
		{By: DimObject, Metric: "median"}, // unknown metric
		{By: DimObject, K: -1},            // negative top-K
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, a)
		}
		if _, err := AggregateMatches(a, nil); err == nil {
			t.Errorf("case %d: AggregateMatches accepted %+v", i, a)
		}
		if _, err := AggregatePairs(a, nil); err == nil {
			t.Errorf("case %d: AggregatePairs accepted %+v", i, a)
		}
	}
}
