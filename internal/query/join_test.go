package query

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/store"
)

// randomJoinOn draws a valid join predicate: at least one pairing clause,
// never both SameObject and DistinctObjects.
func randomJoinOn(rng *rand.Rand) JoinOn {
	for {
		var on JoinOn
		switch rng.Intn(3) {
		case 0:
			on.TimeOverlap = true
		case 1:
			on.Within = time.Duration(1+rng.Intn(180)) * time.Minute
		}
		if rng.Intn(2) == 0 {
			on.MaxDistance = 100 + rng.Float64()*1500
		}
		if rng.Intn(4) == 0 {
			on.SameAnnKey = core.AnnPOICategory
		}
		switch rng.Intn(4) {
		case 0:
			on.SameObject = true
		case 1:
			on.DistinctObjects = true
		}
		if on.Validate() == nil {
			return on
		}
	}
}

// brutePair is the test's own pair-predicate evaluation, written against the
// documented JoinOn semantics rather than sharing code with pairMatches.
func brutePair(on JoinOn, l, r stored) bool {
	if on.SameObject && l.ref.ObjectID != r.ref.ObjectID {
		return false
	}
	if on.DistinctObjects && l.ref.ObjectID == r.ref.ObjectID {
		return false
	}
	if on.TimeOverlap || on.Within > 0 {
		if l.tp.TimeIn.After(r.tp.TimeOut.Add(on.Within)) ||
			r.tp.TimeIn.After(l.tp.TimeOut.Add(on.Within)) {
			return false
		}
	}
	if on.MaxDistance > 0 {
		if l.tp.Episode == nil || r.tp.Episode == nil ||
			l.tp.Episode.Center.DistanceTo(r.tp.Episode.Center) > on.MaxDistance {
			return false
		}
	}
	if on.SamePlace {
		if l.tp.PlaceID() == "" || l.tp.PlaceID() != r.tp.PlaceID() {
			return false
		}
	}
	if k := on.SameAnnKey; k != "" {
		lv := l.tp.Annotations.Value(k)
		if lv == "" || lv != r.tp.Annotations.Value(k) {
			return false
		}
	}
	return true
}

type refPair struct{ l, r store.TupleRef }

// bruteJoin is the nested-loop reference the planned execution is checked
// against: every (left, right) stored pair passing both side predicates and
// the pair predicate.
func bruteJoin(j Join, all []stored) map[refPair]bool {
	want := map[refPair]bool{}
	for _, l := range all {
		if !bruteMatches(j.Left, l) {
			continue
		}
		for _, r := range all {
			if !bruteMatches(j.Right, r) {
				continue
			}
			if brutePair(j.On, l, r) {
				want[refPair{l.ref, r.ref}] = true
			}
		}
	}
	return want
}

// TestJoinMatchesBruteForce is the join's quick-check: random workloads,
// random side queries, random join predicates — the build/probe execution
// must return exactly the nested-loop reference's pairs, in canonical order,
// no matter which side the planner built or which access paths the probes
// ran through.
func TestJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	st := store.NewSharded(8)
	e := NewEngine(st)
	all := populate(t, st, 43, 6, 3, 10)
	for i := 0; i < 120; i++ {
		j := Join{Left: randomQuery(rng), Right: randomQuery(rng), On: randomJoinOn(rng)}
		pairs, jp, err := e.ExecuteJoinExplained(j)
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("join %d (on %+v, plan %s)", i, j.On, jp)
		want := bruteJoin(j, all)
		got := map[refPair]bool{}
		for k := range pairs {
			p := refPair{pairs[k].Left.Ref, pairs[k].Right.Ref}
			if got[p] {
				t.Fatalf("%s: duplicate pair %+v", label, p)
			}
			got[p] = true
		}
		if len(got) != len(want) {
			t.Fatalf("%s: got %d pairs, want %d", label, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("%s: missing pair %+v", label, p)
			}
		}
		for k := 1; k < len(pairs); k++ {
			if pairs[k].less(&pairs[k-1]) {
				t.Fatalf("%s: pairs out of canonical order at %d", label, k)
			}
		}
	}
}

// TestJoinPlanBuildsSmallerSide pins the build-side decision on a workload
// where the right answer is unambiguous: a selective annotation query joined
// against a full scan must be built, whichever side it is written on, and
// every probe of the scan side must run through a real access path for the
// spatially constrained probe queries.
func TestJoinPlanBuildsSmallerSide(t *testing.T) {
	st := store.NewSharded(8)
	e := NewEngine(st)
	populate(t, st, 7, 6, 3, 12)

	selective := MustBuild(OnlyStops(), WithAnnotation(core.AnnPOICategory, "restaurant"))
	everything := Query{}
	on := JoinOn{Within: time.Hour, MaxDistance: 300, DistinctObjects: true}

	pairs, jp, err := e.ExecuteJoinExplained(Join{Left: selective, Right: everything, On: on})
	if err != nil {
		t.Fatal(err)
	}
	if jp.BuildSide != SideLeft {
		t.Fatalf("selective left side not chosen as build: %s", jp)
	}
	if jp.LeftEstimate >= jp.RightEstimate {
		t.Fatalf("estimates did not separate the sides: %s", jp)
	}
	if jp.Build.Path != PathAnnotation {
		t.Fatalf("build side executed through %s, want %s (%s)", jp.Build.Path, PathAnnotation, jp)
	}
	// Every build row carries geometry, so every probe must have planned —
	// and with a 300 m disc pinned per row, none may fall back to a scan.
	probes := 0
	for path, n := range jp.ProbePaths {
		probes += n
		if path == PathScan {
			t.Fatalf("probe fell back to a full scan: %s", jp)
		}
	}
	if probes == 0 {
		t.Fatalf("no probes recorded: %s", jp)
	}

	flipped, fp, err := e.ExecuteJoinExplained(Join{Left: everything, Right: selective, On: on})
	if err != nil {
		t.Fatal(err)
	}
	if fp.BuildSide != SideRight {
		t.Fatalf("selective right side not chosen as build: %s", fp)
	}
	// The same join written either way around must produce the same pair set
	// with sides swapped.
	if len(flipped) != len(pairs) {
		t.Fatalf("flipped join found %d pairs, original %d", len(flipped), len(pairs))
	}
	seen := map[refPair]bool{}
	for _, p := range pairs {
		seen[refPair{p.Left.Ref, p.Right.Ref}] = true
	}
	for _, p := range flipped {
		if !seen[refPair{p.Right.Ref, p.Left.Ref}] {
			t.Fatalf("flipped pair %+v/%+v missing from original", p.Left.Ref, p.Right.Ref)
		}
	}
}

// TestJoinSamePlace checks the place-equality clause on tuples that actually
// link places (populate's workload has none).
func TestJoinSamePlace(t *testing.T) {
	st := store.New()
	e := NewEngine(st)
	cafe := &core.Place{ID: "poi-cafe", Kind: core.PointPlace, Name: "cafe", Extent: geo.RectAround(geo.Pt(100, 100), 20)}
	park := &core.Place{ID: "roi-park", Kind: core.RegionPlace, Name: "park", Extent: geo.RectAround(geo.Pt(900, 900), 200)}
	mk := func(obj string, place *core.Place, at time.Time) {
		tp := mkTuple(episode.Stop, at, at.Add(30*time.Minute), geo.Pt(100, 100))
		tp.Place = place
		if err := st.AppendStructuredTuples(obj+"-T0", obj, DefaultInterpretation, tp); err != nil {
			t.Fatal(err)
		}
	}
	mk("a", cafe, t0)
	mk("b", cafe, t0.Add(10*time.Minute))
	mk("c", park, t0.Add(5*time.Minute))
	mk("d", nil, t0) // no place: can never satisfy SamePlace

	pairs, err := e.ExecuteJoin(Join{
		Left:  MustBuild(OnlyStops()),
		Right: MustBuild(OnlyStops()),
		On:    JoinOn{TimeOverlap: true, SamePlace: true, DistinctObjects: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs, want 2 (a~b both ways): %+v", len(pairs), pairs)
	}
	for _, p := range pairs {
		if p.Left.Tuple.PlaceID() != "poi-cafe" || p.Right.Tuple.PlaceID() != "poi-cafe" {
			t.Fatalf("pair outside the shared place: %+v", p)
		}
	}
}

// TestJoinValidation pins the construction-time errors.
func TestJoinValidation(t *testing.T) {
	st := store.New()
	e := NewEngine(st)
	cases := []struct {
		name string
		j    Join
	}{
		{"no pairing clause", Join{On: JoinOn{}}},
		{"same and distinct", Join{On: JoinOn{TimeOverlap: true, SameObject: true, DistinctObjects: true}}},
		{"negative within", Join{On: JoinOn{Within: -time.Hour}}},
		{"negative distance", Join{On: JoinOn{TimeOverlap: true, MaxDistance: -1}}},
		{"left side limit", Join{Left: Query{Limit: 3}, On: JoinOn{TimeOverlap: true}}},
		{"right side limit", Join{Right: Query{Limit: 3}, On: JoinOn{TimeOverlap: true}}},
		{"negative join limit", Join{On: JoinOn{TimeOverlap: true}, Limit: -1}},
		{"invalid side", Join{Left: Query{Radius: 5}, On: JoinOn{TimeOverlap: true}}},
	}
	for _, c := range cases {
		if _, err := e.ExecuteJoin(c.j); err == nil {
			t.Errorf("%s: ExecuteJoin accepted an invalid join", c.name)
		}
		if _, err := e.ExplainJoin(c.j); err == nil {
			t.Errorf("%s: ExplainJoin accepted an invalid join", c.name)
		}
	}
}

// TestJoinLimit checks that Join.Limit truncates the canonical order, i.e.
// the limited result is a prefix of the unlimited one.
func TestJoinLimit(t *testing.T) {
	st := store.NewSharded(4)
	e := NewEngine(st)
	populate(t, st, 11, 4, 2, 8)
	j := Join{
		Left:  MustBuild(OnlyStops()),
		Right: MustBuild(OnlyStops()),
		On:    JoinOn{Within: 2 * time.Hour, DistinctObjects: true},
	}
	all, err := e.ExecuteJoin(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 5 {
		t.Fatalf("workload produced only %d pairs; the limit test needs more", len(all))
	}
	j.Limit = 3
	capped, err := e.ExecuteJoin(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 3 {
		t.Fatalf("limit 3 returned %d pairs", len(capped))
	}
	for i := range capped {
		if capped[i].Left.Ref != all[i].Left.Ref || capped[i].Right.Ref != all[i].Right.Ref {
			t.Fatalf("limited pair %d is not the unlimited prefix", i)
		}
	}
}
