package query

import (
	"time"

	"semitri/internal/obs"
)

// Trace is the EXPLAIN ANALYZE record of one executed statement: the plan
// that ran, per-stage wall time and row counts, the segment-prune decisions
// the scan path took (with the footer rule that refuted each pruned
// segment), and — for joins — the probe fan-out per worker and per access
// path. Traced execution returns exactly what untraced execution returns;
// the trace rides alongside. A nil *Trace threaded through the executor
// disables collection, which is how the hot path stays trace-free.
type Trace struct {
	// Kind is "query" or "join".
	Kind string `json:"kind"`
	// Plan is the executed plan rendered as Explain would show it.
	Plan string `json:"plan"`
	// Path is the chosen access path of a single-table query.
	Path string `json:"path,omitempty"`
	// PlanNs/ExecNs/TotalNs break the wall time into planning and execution.
	PlanNs  int64 `json:"plan_ns"`
	ExecNs  int64 `json:"exec_ns"`
	TotalNs int64 `json:"total_ns"`
	// Candidates counts index candidates examined; Returned counts matches
	// (or pairs) produced.
	Candidates int `json:"candidates"`
	Returned   int `json:"returned"`
	// Stages are the per-stage timings in execution order.
	Stages []TraceStage `json:"stages"`
	// Segments records, for scan-path execution over a tiered store, every
	// cold segment's keep/prune decision.
	Segments []SegmentDecision `json:"segments,omitempty"`
	// Workers, WorkerProbes and ProbePaths describe a join's probe fan-out:
	// pool size, probes handled per worker (parallel joins only), and probes
	// by access path.
	Workers      int            `json:"workers,omitempty"`
	WorkerProbes []int          `json:"worker_probes,omitempty"`
	ProbePaths   map[string]int `json:"probe_paths,omitempty"`
	// Build is the build side's sub-trace of a join.
	Build *Trace `json:"build,omitempty"`
}

// TraceStage is one timed execution stage.
type TraceStage struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
	Rows int    `json:"rows"`
}

// SegmentDecision is one cold segment's prune decision: kept, or pruned with
// the footer rule that refuted it.
type SegmentDecision struct {
	Segment int    `json:"segment"`
	Pruned  bool   `json:"pruned"`
	Rule    string `json:"rule,omitempty"`
}

// stage appends a timed stage. Safe on a nil receiver, so the executor can
// call it unconditionally at stage boundaries that are off the hot path.
func (tr *Trace) stage(name string, start time.Time, rows int) {
	if tr == nil {
		return
	}
	tr.Stages = append(tr.Stages, TraceStage{Name: name, Ns: time.Since(start).Nanoseconds(), Rows: rows})
}

// addCandidates accumulates the examined-candidate count.
func (tr *Trace) addCandidates(n int) {
	if tr != nil {
		tr.Candidates += n
	}
}

// ExecuteTraced is ExecuteExplained plus a full execution trace.
func (e *Engine) ExecuteTraced(q Query) ([]Match, Plan, *Trace, error) {
	q = q.normalized()
	if err := q.Validate(); err != nil {
		return nil, Plan{}, nil, err
	}
	t0 := time.Now()
	p := e.plan(q)
	planNs := time.Since(t0).Nanoseconds()
	tr := &Trace{Kind: "query", Plan: p.String(), Path: string(p.Path), PlanNs: planNs}
	t1 := time.Now()
	out := e.executeBuf(&q, p.Path, nil, 0, tr)
	tr.ExecNs = time.Since(t1).Nanoseconds()
	tr.TotalNs = time.Since(t0).Nanoseconds()
	tr.Returned = len(out)
	obs.QueryByPath[pathRank(p.Path)].Inc()
	obs.QueryPlanNs.ObserveNs(planNs)
	obs.QueryExecNs.ObserveNs(tr.ExecNs)
	obs.QueryReturned.Add(int64(len(out)))
	return out, p, tr, nil
}

// ExecuteJoinTraced is ExecuteJoinExplained plus a full execution trace: the
// build side's sub-trace (segment prune decisions included), probe wall time
// and the per-worker probe spread.
func (e *Engine) ExecuteJoinTraced(j Join) ([]JoinMatch, JoinPlan, *Trace, error) {
	tr := &Trace{Kind: "join"}
	out, jp, err := e.executeJoin(j, tr)
	if err != nil {
		return nil, JoinPlan{}, nil, err
	}
	return out, jp, tr, nil
}
