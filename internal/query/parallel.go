// Parallel execution: the worker-pool machinery behind Execute, ExecuteJoin
// and Aggregate.
//
// Every parallel path in this package preserves one invariant: the result is
// byte-identical — order included — to what serial execution produces. The
// techniques are:
//
//   - candidate resolution sorts refs into the canonical output order first,
//     splits them into contiguous chunks at trajectory-group boundaries
//     (duplicate postings stay adjacent inside one chunk, and each
//     trajectory's batch resolves under one stripe lock), resolves chunks
//     concurrently and concatenates the per-chunk outputs in chunk order;
//   - full scans fan out over the store's own lock stripes, and the caller
//     sorts the concatenation by the unique canonical key, so the merge
//     order cannot matter;
//   - join probes run one build row per task with per-worker pair buffers,
//     re-assembled in build-row order before the final canonical sort;
//   - aggregation folds per-worker partial group maps whose merge is a sum
//     of integers and a union of sets — exact and order-independent.
//
// Below a cardinality threshold execution stays serial: for small results
// goroutine handoff costs more than the work.
package query

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/obs"
	"semitri/internal/store"
)

// DefaultSerialThreshold is the candidate/row count below which execution
// stays serial. Sized so that point lookups and narrow probes never pay for
// goroutine handoff, while scans and joins large enough to matter fan out.
const DefaultSerialThreshold = 64

// Options configures an Engine's execution behaviour.
type Options struct {
	// Parallelism caps the worker pool of scans, candidate resolution and
	// join probing. Values below 1 mean runtime.GOMAXPROCS(0).
	Parallelism int
	// SerialThreshold is the candidate/row count below which execution stays
	// serial. Values below 1 mean DefaultSerialThreshold.
	SerialThreshold int
}

// SetParallelism changes the engine's worker cap at runtime (values below 1
// mean runtime.GOMAXPROCS(0)). Safe to call concurrently with queries;
// in-flight executions keep the value they started with.
func (e *Engine) SetParallelism(n int) { e.par.Store(int32(n)) }

// Parallelism reports the effective worker cap.
func (e *Engine) Parallelism() int {
	if n := int(e.par.Load()); n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetSerialThreshold changes the serial-execution cutoff at runtime (values
// below 1 mean DefaultSerialThreshold). Exposed so tests and benchmarks can
// force the parallel paths onto small workloads.
func (e *Engine) SetSerialThreshold(n int) { e.serialThreshold.Store(int32(n)) }

// serialCutoff is the effective serial-execution cutoff.
func (e *Engine) serialCutoff() int {
	if n := int(e.serialThreshold.Load()); n >= 1 {
		return n
	}
	return DefaultSerialThreshold
}

// workersFor sizes the worker pool for n independent work items: 1 (serial)
// when parallelism is off or n is under the cutoff, otherwise min(cap, n).
func (e *Engine) workersFor(n int) int {
	p := e.Parallelism()
	if p <= 1 || n < e.serialCutoff() {
		return 1
	}
	return min(p, n)
}

// scratch is the pooled per-execution working set: the candidate ref buffer,
// the per-trajectory index batch and the resolution result buffers. One
// scratch serves one goroutine at a time; the pool keeps steady-state query
// execution allocation-free on the gather/resolve path.
type scratch struct {
	refs    []store.TupleRef
	indexes []int
	tuples  []core.EpisodeTuple
	ok      []bool
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch   { return scratchPool.Get().(*scratch) }
func putScratch(sc *scratch) { scratchPool.Put(sc) }

// chunkBounds splits sorted refs into at most `chunks` contiguous ranges,
// never splitting a (trajectory, interpretation) group: bounds[i]:bounds[i+1]
// is chunk i. Group integrity is what keeps parallel resolution identical to
// serial — duplicate postings (adjacent equals) dedup inside one chunk, and
// each trajectory batch still resolves under a single stripe lock.
func chunkBounds(refs []store.TupleRef, chunks int) []int {
	target := (len(refs) + chunks - 1) / chunks
	bounds := make([]int, 1, chunks+1)
	for pos := 0; pos < len(refs); {
		end := pos + target
		if end >= len(refs) {
			bounds = append(bounds, len(refs))
			break
		}
		for end < len(refs) &&
			refs[end].TrajectoryID == refs[end-1].TrajectoryID &&
			refs[end].Interpretation == refs[end-1].Interpretation {
			end++
		}
		bounds = append(bounds, end)
		pos = end
	}
	return bounds
}

// resolveParallel fans sorted candidate refs out over a worker pool and
// appends the verified matches to out in the exact order serial resolution
// would produce: chunks are contiguous ranges of the sorted refs, each
// chunk's output is internally ordered, and outputs concatenate in chunk
// order. With a limit, each chunk resolves at most limit matches, and a
// worker that completes a chunk checks whether the complete prefix of chunks
// already covers the limit — if so the context cancels and the remaining
// chunks (whose output the merge would discard) are abandoned mid-flight.
func (e *Engine) resolveParallel(q *Query, refs []store.TupleRef, out []Match, workers int) []Match {
	bounds := chunkBounds(refs, workers)
	n := len(bounds) - 1
	if n <= 1 || workers <= 1 {
		sc := getScratch()
		out = e.resolveChunk(nil, q, refs, out, sc)
		putScratch(sc)
		return out
	}
	outs := make([][]Match, n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		mu       sync.Mutex
		complete = make([]bool, n)
		filled   int // chunks 0..filled-1 are complete
		prefix   int // total matches in that complete prefix
	)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < min(workers, n); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := getScratch()
			defer putScratch(sc)
			for {
				ci := int(next.Add(1)) - 1
				if ci >= n {
					return
				}
				select {
				case <-ctx.Done():
					return
				default:
				}
				outs[ci] = e.resolveChunk(ctx, q, refs[bounds[ci]:bounds[ci+1]], nil, sc)
				if q.Limit <= 0 {
					continue
				}
				mu.Lock()
				complete[ci] = true
				for filled < n && complete[filled] {
					prefix += len(outs[filled])
					filled++
					if prefix >= q.Limit {
						cancel()
						break
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, chunk := range outs {
		out = append(out, chunk...)
		if q.Limit > 0 && len(out) >= q.Limit {
			out = out[:q.Limit]
			break
		}
	}
	return out
}

// scanMatches runs the full-scan path, appending raw (unsorted) matches to
// out. The scan units are the store's lock stripes (the heap tail) plus the
// cold segments whose footer summary survives pruning against the query
// (see pruneSegments); large scans visit the units concurrently, and the
// caller's canonical sort makes the interleaving unobservable. Small stores
// stay on the serial single-pass visit.
//
// The segment list is captured before any stripe is visited and the tier
// registers a freezing segment's runs before the store evicts the matching
// heap prefixes, so a freeze racing the scan can duplicate a tuple (same
// logical ref from both sides) but never hide one; the caller's post-sort
// dedup collapses the duplicates.
func (e *Engine) scanMatches(q *Query, out []Match, maxWorkers int, tr *Trace) []Match {
	segs := e.pruneSegments(q, tr)
	shards := e.st.ShardCount()
	units := shards + len(segs)
	visitUnit := func(u int, fn func(ref store.TupleRef, t core.EpisodeTuple) bool) {
		if u < len(segs) {
			e.st.VisitColdSegmentTuples(segs[u], q.Interpretation, fn)
			return
		}
		e.st.VisitShardTuples(u-len(segs), q.Interpretation, fn)
	}
	workers := e.workersFor(int(e.total.Load()))
	if maxWorkers >= 1 {
		workers = min(workers, maxWorkers)
	}
	workers = min(workers, units)
	if workers <= 1 {
		for u := 0; u < units; u++ {
			visitUnit(u, func(ref store.TupleRef, t core.EpisodeTuple) bool {
				if q.matches(ref, &t) {
					out = append(out, Match{Ref: ref, Tuple: t})
				}
				return true
			})
		}
		return out
	}
	outs := make([][]Match, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := outs[w]
			for {
				u := int(next.Add(1)) - 1
				if u >= units {
					break
				}
				visitUnit(u, func(ref store.TupleRef, t core.EpisodeTuple) bool {
					if q.matches(ref, &t) {
						local = append(local, Match{Ref: ref, Tuple: t})
					}
					return true
				})
			}
			outs[w] = local
		}(w)
	}
	wg.Wait()
	for _, chunk := range outs {
		out = append(out, chunk...)
	}
	return out
}

// pruneSegments returns the indexes of the cold segments a scan of q must
// visit: a segment is skipped only when its footer summary proves no tuple
// inside can match. Untiered stores return nil. Every rule errs open — a
// kept segment costs a decode, a wrongly pruned one costs correctness. Each
// prune bumps the per-rule metric, and tr (when non-nil) records every
// decision for EXPLAIN ANALYZE.
func (e *Engine) pruneSegments(q *Query, tr *Trace) []int {
	sums := e.st.ColdSummaries(nil)
	if len(sums) == 0 {
		return nil
	}
	segs := make([]int, 0, len(sums))
	for i := range sums {
		ok, rule := e.segmentCanMatch(q, &sums[i])
		if ok {
			segs = append(segs, i)
		} else {
			obs.SegmentPrunedBy(rule)
		}
		if tr != nil {
			tr.Segments = append(tr.Segments, SegmentDecision{Segment: i, Pruned: !ok, Rule: rule})
		}
	}
	return segs
}

// segmentCanMatch reports whether a segment's footer summary admits any
// match for q; when it does not, rule names the refuting footer rule (one of
// obs.PruneRules).
func (e *Engine) segmentCanMatch(q *Query, s *store.SegmentSummary) (bool, string) {
	if q.Interpretation != "" && s.Tuples[q.Interpretation] == 0 {
		return false, "interpretation"
	}
	if q.Kind != nil {
		if *q.Kind == episode.Stop && s.Stops == 0 {
			return false, "kind"
		}
		if *q.Kind == episode.Move && s.Moves == 0 {
			return false, "kind"
		}
	}
	// Time-span overlap. The footer folds zero TimeIns into TimeMin, so a
	// segment holding untimed tuples is never pruned by an upper bound; a
	// zero TimeOut keeps the tuple unmatched by any From filter, exactly as
	// the per-tuple check would decide.
	if !q.To.IsZero() && s.TimeMin.After(q.To) {
		return false, "time-span"
	}
	if !q.From.IsZero() && s.TimeMax.Before(q.From) {
		return false, "time-span"
	}
	if q.ObjectID != "" && !s.Objects.MayContain(q.ObjectID) {
		return false, "object-bloom"
	}
	// An empty AnnValue asks for tuples *without* the key, which the key
	// cardinality cannot refute. A live merge overlay can add keys the
	// footer never counted, so the rule only applies when no overlay exists.
	if q.AnnKey != "" && q.AnnValue != "" && s.AnnKeys[q.AnnKey] == 0 &&
		e.st.OverlayCount() == 0 {
		return false, "annotation-key"
	}
	if q.Window != nil || q.Near != nil {
		if s.GeomCount == 0 {
			return false, "no-geometry" // spatial predicates only match episode-backed tuples
		}
		if !q.spatialRect().Intersects(s.GeomBounds) {
			return false, "bbox"
		}
	}
	return true, ""
}
