package query

// Property tests for the tiered storage engine's query surface: a store with
// frozen segments must answer every query exactly like an all-heap store —
// same refs, same tuple bytes, same order — at every worker count, with the
// freeze points chosen at random and the merge overlay in play.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/segment"
	"semitri/internal/store"
)

// cloneTuple deep-copies a tuple so the heap and tiered stores never share
// mutable state (heap merges mutate annotations in place).
func cloneTuple(tp *core.EpisodeTuple) *core.EpisodeTuple {
	cp := *tp
	cp.Annotations = tp.Annotations.Clone()
	if tp.Place != nil {
		p := *tp.Place
		cp.Place = &p
	}
	if tp.Episode != nil {
		e := *tp.Episode
		cp.Episode = &e
	}
	return &cp
}

// TestTieredEngineMatchesHeap replays one workload into an all-heap store
// and into a tiered store with random freeze points, merges annotations into
// frozen and hot tuples on both, then checks that every random query returns
// reflect.DeepEqual answers at workers 1, 2, 4 and 8.
func TestTieredEngineMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	heap := store.NewSharded(8)
	heapEng := NewEngine(heap)
	all := populate(t, heap, 42, 6, 3, 12)

	tiered, tier, _, err := segment.Recover(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	tieredEng := NewEngine(tiered) // live maintenance across freezes
	for _, s := range all {
		if err := tiered.AppendStructuredTuples(s.ref.TrajectoryID, s.ref.ObjectID,
			s.ref.Interpretation, cloneTuple(s.tp)); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(30) == 0 {
			if err := tier.Freeze(tiered); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Identical merges on both stores: on the tiered one, merges into frozen
	// positions land in the overlay rather than the heap.
	for i := 0; i < 25; i++ {
		s := all[rng.Intn(len(all))]
		anns := []core.Annotation{{Key: "activity", Value: fmt.Sprintf("act%d", i%4),
			Confidence: 0.5, Source: "prop"}}
		if err := heap.MergeTupleAnnotations(s.ref.TrajectoryID, s.ref.Interpretation, s.ref.Index, nil, anns); err != nil {
			t.Fatal(err)
		}
		if err := tiered.MergeTupleAnnotations(s.ref.TrajectoryID, s.ref.Interpretation, s.ref.Index, nil, anns); err != nil {
			t.Fatal(err)
		}
		if i == 12 {
			// Mid-merge freeze: earlier overlay entries get written out as
			// merge frames, later ones overlay the new segment.
			if err := tier.Freeze(tiered); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tier.Freeze(tiered); err != nil {
		t.Fatal(err)
	}
	if tier.SegmentCount() == 0 {
		t.Fatal("workload never froze a segment")
	}

	for i := 0; i < 150; i++ {
		q := randomQuery(rng)
		want, err := heapEng.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 4, 8} {
			tieredEng.SetParallelism(w)
			got, err := tieredEng.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d (%+v) workers=%d: tiered answer diverges from heap\nheap   %d matches\ntiered %d matches",
					i, q, w, len(want), len(got))
			}
		}
	}
}

// TestTieredRecoveredEngineMatchesHeap closes the tier mid-life and recovers
// from segments + nothing else, then re-checks query equality — the recovered
// store must be indistinguishable from the one that never restarted.
func TestTieredRecoveredEngineMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	heap := store.NewSharded(4)
	heapEng := NewEngine(heap)
	all := populate(t, heap, 41, 6, 3, 10)

	dir := t.TempDir()
	tiered, tier, _, err := segment.Recover(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		if err := tiered.AppendStructuredTuples(s.ref.TrajectoryID, s.ref.ObjectID,
			s.ref.Interpretation, cloneTuple(s.tp)); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(40) == 0 {
			if err := tier.Freeze(tiered); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tier.Freeze(tiered); err != nil {
		t.Fatal(err)
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, tier2, _, err := segment.Recover(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tier2.Close()
	recEng := NewEngine(recovered) // backfill from cold segments
	for i := 0; i < 80; i++ {
		q := randomQuery(rng)
		want, err := heapEng.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 4} {
			recEng.SetParallelism(w)
			got, err := recEng.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d (%+v) workers=%d after recovery: %d matches, want %d",
					i, q, w, len(got), len(want))
			}
		}
	}
}

// TestTieredFreezeQueryRace runs ingestion, freezes and queries concurrently
// (meant for -race): results must stay strictly ordered and duplicate-free
// throughout, and after quiescence a full scan must equal brute force.
func TestTieredFreezeQueryRace(t *testing.T) {
	st, tier, _, err := segment.Recover(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	e := NewEngine(st)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer: live ingestion during freezes and queries
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		at := t0
		for i := 0; i < 4000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			obj := fmt.Sprintf("u%d", i%4)
			id := fmt.Sprintf("%s-T%d", obj, i%2)
			kind := episode.Stop
			anns := []core.Annotation{ann(core.AnnPOICategory, "shop")}
			if i%2 == 1 {
				kind = episode.Move
				anns = []core.Annotation{ann(core.AnnTransportMode, "walk")}
			}
			end := at.Add(time.Duration(1+rng.Intn(10)) * time.Minute)
			tp := mkTuple(kind, at, end, geo.Pt(rng.Float64()*2000, rng.Float64()*2000), anns...)
			if err := st.AppendStructuredTuples(id, obj, DefaultInterpretation, tp); err != nil {
				t.Error(err)
				return
			}
			at = end
		}
	}()
	wg.Add(1)
	go func() { // freezer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := tier.Freeze(st); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) { // queriers
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ms, err := e.Execute(randomQuery(rng))
				if err != nil {
					t.Error(err)
					return
				}
				for j := 1; j < len(ms); j++ {
					if !ms[j-1].less(&ms[j]) {
						t.Errorf("results unordered or duplicated at %d", j)
						return
					}
				}
			}
		}(int64(100 + g))
	}
	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiescent check: one more freeze, then a full scan must match a
	// brute-force walk of the store exactly.
	if err := tier.Freeze(st); err != nil {
		t.Fatal(err)
	}
	ms, err := e.Execute(Query{})
	if err != nil {
		t.Fatal(err)
	}
	var want []store.TupleRef
	st.VisitStructuredTuples(DefaultInterpretation, func(ref store.TupleRef, _ core.EpisodeTuple) bool {
		want = append(want, ref)
		return true
	})
	sameRefSet(t, "post-race full scan", gotRefs(ms), want)
}
