package query

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"semitri/internal/core"
)

// Dim names a grouping dimension of an Aggregate.
type Dim string

const (
	// DimObject groups by moving object id.
	DimObject Dim = "object"
	// DimTrajectory groups by trajectory id.
	DimTrajectory Dim = "trajectory"
	// DimPlace groups by the linked semantic place id (POI, road segment,
	// land-use cell); rows without a place are dropped.
	DimPlace Dim = "place"
	// DimKind groups by episode kind (stop/move).
	DimKind Dim = "kind"
	// DimAnnotation groups by the value of Aggregate.AnnKey; rows without
	// the key are dropped.
	DimAnnotation Dim = "ann"
)

// Metric names the value an Aggregate computes per group. Groups are ranked
// by it (descending, ties broken by key) before TopK truncation.
type Metric string

const (
	// MetricCount counts rows (or pairs) per group. The default.
	MetricCount Metric = "count"
	// MetricDistinctObjects counts distinct moving objects per group — for
	// join results, distinct objects on the *right* side of the pair
	// ("how many distinct others co-located here").
	MetricDistinctObjects Metric = "distinct-objects"
	// MetricDuration sums episode durations per group in seconds — for join
	// results, the pairwise interval overlap (clamped at zero), i.e. the
	// total co-location time.
	MetricDuration Metric = "duration"
)

// Aggregate groups query or join results along one dimension, computes a
// metric per group and keeps the top K groups by that metric.
type Aggregate struct {
	// By is the grouping dimension. For join results the group key is
	// extracted from the left side of each pair.
	By Dim
	// AnnKey is the annotation key grouped by when By is DimAnnotation.
	AnnKey string
	// Metric is the per-group value; empty means MetricCount.
	Metric Metric
	// K caps the number of groups returned (after the deterministic
	// ranking); 0 means all.
	K int
	// Workers caps the fold's worker pool. Values below 1 mean
	// runtime.GOMAXPROCS(0); folds under DefaultSerialThreshold rows stay
	// serial regardless. The result is byte-identical at any worker count:
	// per-worker partial group maps merge by exact integer sums and set
	// unions, then rank deterministically.
	Workers int
}

// Validate checks the structural invariants of the aggregate.
func (a Aggregate) Validate() error {
	switch a.By {
	case DimObject, DimTrajectory, DimPlace, DimKind:
		if a.AnnKey != "" {
			return fmt.Errorf("query: aggregate by %s does not take an annotation key", a.By)
		}
	case DimAnnotation:
		if a.AnnKey == "" {
			return errors.New("query: aggregate by annotation needs AnnKey")
		}
	default:
		return fmt.Errorf("query: unknown aggregate dimension %q", a.By)
	}
	switch a.Metric {
	case "", MetricCount, MetricDistinctObjects, MetricDuration:
	default:
		return fmt.Errorf("query: unknown aggregate metric %q", a.Metric)
	}
	if a.K < 0 {
		return errors.New("query: negative top-K")
	}
	return nil
}

// metric returns the metric with the default applied.
func (a *Aggregate) metric() Metric {
	if a.Metric == "" {
		return MetricCount
	}
	return a.Metric
}

// Group is one aggregation result: the group key, the raw row count and the
// ranked metric value (count, distinct objects, or seconds).
type Group struct {
	Key   string  `json:"key"`
	Count int     `json:"count"`
	Value float64 `json:"value"`
}

// key extracts the group key of a match under the aggregate's dimension;
// ok is false when the row carries no value for it (no place, missing
// annotation key) and must be dropped.
func (a *Aggregate) key(m *Match) (string, bool) {
	switch a.By {
	case DimObject:
		return m.Ref.ObjectID, true
	case DimTrajectory:
		return m.Ref.TrajectoryID, true
	case DimPlace:
		id := m.Tuple.PlaceID()
		return id, id != ""
	case DimKind:
		return m.Tuple.Kind.String(), true
	case DimAnnotation:
		v := m.Tuple.Annotations.Value(a.AnnKey)
		return v, v != ""
	}
	return "", false
}

// accum is one group's accumulator.
type accum struct {
	count   int
	objects map[string]bool
	dur     time.Duration
}

// AggregateMatches groups single-table query results. MetricDistinctObjects
// counts distinct owning objects per group (e.g. top-K POIs by distinct
// visitors); MetricDuration sums the episodes' durations.
func AggregateMatches(a Aggregate, ms []Match) ([]Group, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return fold(a, len(ms), func(i int) (string, bool, string, time.Duration) {
		m := &ms[i]
		key, ok := a.key(m)
		return key, ok, m.Ref.ObjectID, m.Tuple.Duration()
	})
}

// AggregatePairs groups join results. The group key comes from the left
// side of each pair; MetricDistinctObjects counts distinct right-side
// objects and MetricDuration sums the pairwise interval overlap.
func AggregatePairs(a Aggregate, ps []JoinMatch) ([]Group, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return fold(a, len(ps), func(i int) (string, bool, string, time.Duration) {
		p := &ps[i]
		key, ok := a.key(&p.Left)
		return key, ok, p.Right.Ref.ObjectID, overlap(&p.Left.Tuple, &p.Right.Tuple)
	})
}

// overlap is the length of the intersection of two tuples' closed time
// intervals, zero when they are disjoint.
func overlap(l, r *core.EpisodeTuple) time.Duration {
	lo := l.TimeIn
	if r.TimeIn.After(lo) {
		lo = r.TimeIn
	}
	hi := l.TimeOut
	if r.TimeOut.Before(hi) {
		hi = r.TimeOut
	}
	if hi.Before(lo) {
		return 0
	}
	return hi.Sub(lo)
}

// fold runs the shared accumulation: n rows described by row(i) → (group
// key, keep, object id for distinct counting, duration contribution). Large
// folds split the row range statically across workers, each folding into a
// private partial map; the partials merge by integer sums and set unions —
// exact and order-independent — so the ranked output is byte-identical to a
// serial fold.
func fold(a Aggregate, n int, row func(i int) (string, bool, string, time.Duration)) ([]Group, error) {
	workers := a.foldWorkers(n)
	groups := map[string]*accum{}
	if workers <= 1 {
		foldRange(&a, 0, n, row, groups)
	} else {
		parts := make([]map[string]*accum, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			parts[w] = map[string]*accum{}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				foldRange(&a, w*n/workers, (w+1)*n/workers, row, parts[w])
			}(w)
		}
		wg.Wait()
		for _, part := range parts {
			for key, p := range part {
				g := groups[key]
				if g == nil {
					groups[key] = p
					continue
				}
				g.count += p.count
				g.dur += p.dur
				for obj := range p.objects {
					if g.objects == nil {
						g.objects = map[string]bool{}
					}
					g.objects[obj] = true
				}
			}
		}
	}
	out := make([]Group, 0, len(groups))
	for key, g := range groups {
		gr := Group{Key: key, Count: g.count}
		switch a.metric() {
		case MetricCount:
			gr.Value = float64(g.count)
		case MetricDistinctObjects:
			gr.Value = float64(len(g.objects))
		case MetricDuration:
			gr.Value = g.dur.Seconds()
		}
		out = append(out, gr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Key < out[j].Key
	})
	if a.K > 0 && len(out) > a.K {
		out = out[:a.K]
	}
	return out, nil
}

// foldWorkers sizes the fold's pool for n rows.
func (a *Aggregate) foldWorkers(n int) int {
	w := a.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 || n < DefaultSerialThreshold {
		return 1
	}
	return min(w, n)
}

// foldRange folds rows [lo, hi) into groups.
func foldRange(a *Aggregate, lo, hi int, row func(i int) (string, bool, string, time.Duration), groups map[string]*accum) {
	distinct := a.metric() == MetricDistinctObjects
	for i := lo; i < hi; i++ {
		key, ok, obj, dur := row(i)
		if !ok {
			continue
		}
		g := groups[key]
		if g == nil {
			g = &accum{}
			groups[key] = g
		}
		g.count++
		g.dur += dur
		if distinct {
			if g.objects == nil {
				g.objects = map[string]bool{}
			}
			g.objects[obj] = true
		}
	}
}
