package query

import (
	"fmt"
	"sort"
	"strings"
)

// Path names one access path the planner can execute a query through.
type Path string

const (
	// PathTrajectory resolves the named trajectory's tuples directly from
	// the store — available when Query.TrajectoryID is set.
	PathTrajectory Path = "trajectory"
	// PathAnnotation walks the inverted annotation index — available when
	// Query.AnnKey and AnnValue are set (an empty AnnValue asks for tuples
	// *without* the key, which no inverted index can enumerate).
	PathAnnotation Path = "annotation"
	// PathObjectTime walks the object's time-ordered episode postings —
	// available when Query.ObjectID is set; a time window narrows it by
	// binary search.
	PathObjectTime Path = "object-time"
	// PathSpatial walks the episode-geometry grids — available when
	// Query.Window or Query.Near is set.
	PathSpatial Path = "spatial"
	// PathScan is the indexless fallback: a full pass over the stored
	// tuples of the interpretation. Always available; chosen only when no
	// indexed path is, or when the store is small enough that estimates
	// round down to it.
	PathScan Path = "full-scan"
)

// Plan records the planner's decision for one query: the access path it
// picked and the candidate-count estimate of every path the query's
// predicates made available. The cheapest estimate wins; ties break in
// declaration order of the paths above (most precise first).
type Plan struct {
	Path      Path
	Estimates map[Path]int
}

// String renders the plan compactly: the chosen path first, then the
// alternatives with their estimates.
func (p Plan) String() string {
	paths := make([]Path, 0, len(p.Estimates))
	for path := range p.Estimates {
		paths = append(paths, path)
	}
	sort.Slice(paths, func(i, j int) bool { return pathRank(paths[i]) < pathRank(paths[j]) })
	parts := make([]string, 0, len(paths))
	for _, path := range paths {
		marker := ""
		if path == p.Path {
			marker = "*"
		}
		parts = append(parts, fmt.Sprintf("%s%s≈%d", marker, path, p.Estimates[path]))
	}
	return strings.Join(parts, " ")
}

// pathRank is the tie-break order of the access paths.
func pathRank(p Path) int {
	switch p {
	case PathTrajectory:
		return 0
	case PathAnnotation:
		return 1
	case PathObjectTime:
		return 2
	case PathSpatial:
		return 3
	}
	return 4
}

// numPaths is the number of access paths (the size of rank-indexed tables).
const numPaths = 5

// rankedPaths inverts pathRank: the path at each rank.
var rankedPaths = [numPaths]Path{PathTrajectory, PathAnnotation, PathObjectTime, PathSpatial, PathScan}

// Explain plans the query without executing it.
func (e *Engine) Explain(q Query) (Plan, error) {
	q = q.normalized()
	if err := q.Validate(); err != nil {
		return Plan{}, err
	}
	return e.plan(q), nil
}

// estimates holds per-path candidate-count estimates in fixed rank-indexed
// arrays, so the probe hot path can plan without allocating a map.
type estimates struct {
	n     [numPaths]int
	avail [numPaths]bool
}

// estimatePaths fills est with the candidate-count estimate of every path the
// query's predicates make available. Estimates read per-shard index
// cardinalities (posting list lengths, binary-searched window prefixes, grid
// occupancy) — O(shards) work, never a data scan. q is normalized and valid.
func (e *Engine) estimatePaths(q *Query, est *estimates) {
	*est = estimates{}
	if q.TrajectoryID != "" {
		est.set(PathTrajectory, e.st.TupleCount(q.TrajectoryID, q.Interpretation))
	}
	if q.AnnKey != "" && q.AnnValue != "" {
		k := annKey{interp: q.Interpretation, key: q.AnnKey, value: q.AnnValue}
		sh := e.annShardFor(k)
		sh.mu.RLock()
		est.set(PathAnnotation, len(sh.ann[k]))
		sh.mu.RUnlock()
	}
	if q.ObjectID != "" {
		sh := e.objShardFor(q.ObjectID)
		sh.mu.RLock()
		posted := sh.objects[q.ObjectID]
		lo, hi := 0, len(posted)
		if !q.To.IsZero() {
			hi = sort.Search(len(posted), func(i int) bool { return posted[i].timeIn.After(q.To) })
		}
		if !q.From.IsZero() {
			// TimeIn is sorted; postings whose TimeIn is already past From
			// certainly overlap on that side. Earlier ones may still overlap
			// via TimeOut, so this bound only sharpens the estimate, not the
			// gather (which filters on TimeOut exactly).
			lo = sort.Search(hi, func(i int) bool { return !posted[i].timeIn.Before(q.From) })
			lo = lo / 2 // split the difference on the straddling prefix
		}
		sh.mu.RUnlock()
		est.set(PathObjectTime, hi-lo)
	}
	if q.Window != nil || q.Near != nil {
		rect := q.spatialRect()
		e.spatial.mu.RLock()
		est.set(PathSpatial, e.spatial.grid.EstimateWithin(rect))
		e.spatial.mu.RUnlock()
	}
	est.set(PathScan, int(e.total.Load()))
}

func (est *estimates) set(p Path, n int) {
	r := pathRank(p)
	est.n[r] = n
	est.avail[r] = true
}

// best picks the cheapest available path; ties break toward the more
// precise path (lower rank).
func (est *estimates) best() Path {
	best := pathRank(PathScan)
	for _, path := range [...]Path{PathSpatial, PathObjectTime, PathAnnotation, PathTrajectory} {
		r := pathRank(path)
		if est.avail[r] && est.n[r] <= est.n[best] {
			best = r
		}
	}
	return rankedPaths[best]
}

// plan ranks the available access paths by estimated candidate count and
// picks the cheapest. q is normalized and valid.
func (e *Engine) plan(q Query) Plan {
	var est estimates
	e.estimatePaths(&q, &est)
	m := make(map[Path]int, numPaths)
	for r := 0; r < numPaths; r++ {
		if est.avail[r] {
			m[rankedPaths[r]] = est.n[r]
		}
	}
	return Plan{Path: est.best(), Estimates: m}
}

// planLean is the allocation-free planner used on the join probe hot path:
// same estimates, same tie-break, no Estimates map.
func (e *Engine) planLean(q *Query, est *estimates) Path {
	e.estimatePaths(q, est)
	return est.best()
}
