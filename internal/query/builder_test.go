package query

import (
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
)

// TestBuildSetsFields checks the options map one-to-one onto the Query.
func TestBuildSetsFields(t *testing.T) {
	w := geo.RectAround(geo.Pt(100, 100), 50)
	q, err := Build(
		ForObject("u1"),
		ForTrajectory("u1-T0"),
		InInterpretation("merged"),
		OnlyStops(),
		Between(t0, t0.Add(time.Hour)),
		WithAnnotation(core.AnnPOICategory, "restaurant"),
		InWindow(w),
		WithLimit(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	if q.ObjectID != "u1" || q.TrajectoryID != "u1-T0" || q.Interpretation != "merged" {
		t.Fatalf("identity predicates not set: %+v", q)
	}
	if q.Kind == nil || *q.Kind != episode.Stop {
		t.Fatalf("kind not set: %+v", q)
	}
	if !q.From.Equal(t0) || !q.To.Equal(t0.Add(time.Hour)) {
		t.Fatalf("window not set: %+v", q)
	}
	if q.AnnKey != core.AnnPOICategory || q.AnnValue != "restaurant" {
		t.Fatalf("annotation not set: %+v", q)
	}
	if q.Window == nil || *q.Window != w || q.Limit != 7 {
		t.Fatalf("window/limit not set: %+v", q)
	}
	near, err := Build(NearPoint(geo.Pt(5, 5), 100), OnlyMoves())
	if err != nil {
		t.Fatal(err)
	}
	if near.Near == nil || near.Radius != 100 || *near.Kind != episode.Move {
		t.Fatalf("near predicate not set: %+v", near)
	}
}

// TestBuildValidates checks that a malformed predicate set fails at
// construction time, not at the first Execute.
func TestBuildValidates(t *testing.T) {
	bad := [][]Option{
		{NearPoint(geo.Pt(0, 0), 0)},                               // non-positive radius
		{NearPoint(geo.Pt(0, 0), -5)},                              // negative radius
		{Between(t0.Add(time.Hour), t0)},                           // window ends before start
		{WithLimit(-1)},                                            // negative limit
		{WithAnnotation("", "restaurant")},                         // value without key
		{InWindow(geo.Rect{Min: geo.Pt(5, 5), Max: geo.Pt(1, 1)})}, // empty window
	}
	for i, opts := range bad {
		if _, err := Build(opts...); err == nil {
			t.Errorf("case %d: Build accepted a malformed predicate set", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on a malformed predicate set")
		}
	}()
	MustBuild(WithLimit(-1))
}
