package query

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"semitri/internal/obs"
	"semitri/internal/store"
)

// Live is the standing-query dispatcher: the bridge between the store's
// observer hook and continuous queries ("tell me when any object stops
// inside this window"). A Tap — attached alongside the query engine via
// store.Tee — publishes every index notification onto a bounded event bus;
// a single dispatcher goroutine drains that bus and evaluates each event
// against every registered Standing query's predicate, off the ingest hot
// path, never touching the engine's indexes. The ingest path therefore pays
// one ring-buffer publish per notification batch regardless of how many
// thousand standing queries are registered (bench-asserted by the "live"
// experiment).
//
// Correctness model: a Standing tracks the set of refs whose latest
// observed event satisfies the predicate. Because the store delivers
// notifications for one (trajectory, interpretation) in mutation order and
// each event carries a stable tuple copy, that set equals a quiescent
// engine query once the dispatcher has caught up — property-tested against
// Engine.Execute. Backpressure can drop *delivery* of match notifications
// to a slow subscriber ring, but never corrupts the matched set and never
// produces a notification that was not a true match at evaluation time.
type Live struct {
	st  *store.Store
	bus *obs.Bus[tapEvent]
	// central is the dispatcher's own subscription. Its ring is the only
	// place where standing-query *evaluation* (not just delivery) can fall
	// behind; size it generously (see NewLive).
	central *obs.Sub[tapEvent]

	mu       sync.RWMutex
	standing map[*Standing]struct{}

	// idle is true while the dispatcher is parked with an empty ring —
	// together with central.Lag()==0 this is the Sync condition.
	idle atomic.Bool

	closeOnce sync.Once
	done      chan struct{}
}

// DefaultCentralBuffer is the dispatcher ring size used when NewLive gets
// n <= 0: one slot per notification batch, sized so evaluation only drops
// events when it falls a full freeze-cycle behind ingestion.
const DefaultCentralBuffer = 8192

// NewLive builds a dispatcher over st with a central ring of n batches and
// starts its goroutine. It does NOT attach to the store — wire the returned
// value's Tap alongside the engine:
//
//	st.AttachIndex(store.Tee(engine, live.Tap()))
//
// Close it to stop the dispatcher and release every standing query.
func NewLive(st *store.Store, n int) *Live {
	if n <= 0 {
		n = DefaultCentralBuffer
	}
	l := &Live{
		st:       st,
		bus:      obs.NewBus[tapEvent](obs.LiveBusMetrics),
		standing: map[*Standing]struct{}{},
		done:     make(chan struct{}),
	}
	l.central = l.bus.Subscribe(n)
	go l.run()
	return l
}

// tapEvent is one store notification in transit: an upsert batch, optionally
// preceded by a whole-key clear (StructuredReplaced).
type tapEvent struct {
	clearKey bool
	key      stKey
	events   []store.TupleEvent
}

// tap adapts the store.Index hook onto the event bus. Each method is one
// ring publish — the entire cost standing queries add to the mutating
// goroutine.
type tap struct{ l *Live }

// Tap returns the store.Index to attach (via store.Tee) for this dispatcher.
func (l *Live) Tap() store.Index { return tap{l} }

func (t tap) TuplesAppended(events []store.TupleEvent) {
	if len(events) == 0 {
		return
	}
	t.l.bus.Publish(tapEvent{events: events})
}

func (t tap) StructuredReplaced(trajectoryID, _, interpretation string, events []store.TupleEvent) {
	t.l.bus.Publish(tapEvent{
		clearKey: true,
		key:      stKey{traj: trajectoryID, interp: interpretation},
		events:   events,
	})
}

func (t tap) TupleUpdated(event store.TupleEvent) {
	t.l.bus.Publish(tapEvent{events: []store.TupleEvent{event}})
}

// run is the dispatcher goroutine: drain the central ring, evaluate every
// event against every standing query, park when empty.
func (l *Live) run() {
	defer close(l.done)
	buf := make([]tapEvent, 0, 256)
	for {
		buf = l.central.Drain(buf[:0])
		if len(buf) == 0 {
			l.idle.Store(true)
			if l.central.Lag() == 0 { // re-check after publishing idleness
				select {
				case <-l.central.C():
				case <-l.central.Done():
					// Bus closed: evaluate what was already buffered, then exit.
					l.idle.Store(false)
					for _, ev := range l.central.Drain(buf[:0]) {
						l.dispatch(ev)
					}
					return
				}
			}
			l.idle.Store(false)
			continue
		}
		for _, ev := range buf {
			l.dispatch(ev)
		}
	}
}

// dispatch evaluates one tap event against every registered standing query.
func (l *Live) dispatch(ev tapEvent) {
	start := time.Now()
	l.mu.RLock()
	for s := range l.standing {
		s.apply(ev)
	}
	n := len(l.standing)
	l.mu.RUnlock()
	if n > 0 {
		obs.LiveEventsEvaluated.Add(int64(len(ev.events)))
		obs.LiveDispatchNs.ObserveNs(time.Since(start).Nanoseconds())
	}
}

// Sync blocks until every event published before the call has been
// evaluated, assuming publishers are quiescent (it is a test/bench
// barrier, not a production fence).
func (l *Live) Sync() {
	for {
		select {
		case <-l.done:
			return
		default:
		}
		if l.central.Lag() == 0 && l.idle.Load() {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// BusStats exposes the tap bus's self-instrumentation (the central ring's
// drops are evaluation drops; per-subscriber delivery drops live on each
// Standing).
func (l *Live) BusStats() obs.BusStats { return l.bus.Stats() }

// EvalDrops returns how many tap events the dispatcher itself lost
// (central-ring drop-oldest) — events never evaluated against any standing
// query.
func (l *Live) EvalDrops() int64 { return l.central.Drops() }

// StandingCount returns the number of registered standing queries.
func (l *Live) StandingCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.standing)
}

// Close stops the dispatcher and closes every standing query. Idempotent.
func (l *Live) Close() {
	l.closeOnce.Do(func() {
		l.bus.Close() // closes central; dispatcher drains and exits
		<-l.done
		l.mu.Lock()
		standing := make([]*Standing, 0, len(l.standing))
		for s := range l.standing {
			standing = append(standing, s)
		}
		l.standing = map[*Standing]struct{}{}
		l.mu.Unlock()
		for _, s := range standing {
			s.release()
		}
	})
}

// Notification kinds delivered by a Standing subscription.
const (
	// NotifyMatch: the ref newly satisfies the predicate.
	NotifyMatch = "match"
	// NotifyUpdate: an already-matching ref changed content and still
	// satisfies the predicate.
	NotifyUpdate = "update"
	// NotifyUnmatch: a previously-matching ref no longer satisfies the
	// predicate (content change or whole-interpretation replacement).
	NotifyUnmatch = "unmatch"
)

// Notification is one standing-query delivery.
type Notification struct {
	Kind  string
	Match Match
}

// Standing is one registered standing query: an incrementally maintained
// matched-ref set plus a bounded notification ring (drop-oldest, like every
// bus subscriber — a slow consumer loses notifications, never the set).
type Standing struct {
	live *Live
	q    Query

	mu      sync.Mutex
	matched map[store.TupleRef]bool
	// byKey remembers which refs ever matched per (trajectory,
	// interpretation), so StructuredReplaced can retract them without a
	// scan. Entries may be stale (ref no longer matched); retraction
	// re-checks matched before emitting.
	byKey map[stKey][]store.TupleRef

	bus *obs.Bus[Notification]
	sub *obs.Sub[Notification]

	closeOnce sync.Once
}

// ErrStandingLimit rejects standing queries with a Limit: a result cap has
// no meaning for an unbounded notification stream.
var ErrStandingLimit = errors.New("query: standing queries cannot carry a limit")

// ErrLiveClosed reports registration against a closed dispatcher.
var ErrLiveClosed = errors.New("query: live dispatcher is closed")

// Register compiles q into a standing query with a notification ring of
// `buffer` entries (DefaultSubscriberBuffer when <= 0) and registers it
// with the dispatcher. The matched set starts empty and tracks events from
// this call on: register before ingestion starts for exact parity with a
// post-hoc engine query; a subscription created mid-ingestion converges as
// refs are next touched.
func (l *Live) Register(q Query, buffer int) (*Standing, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.Limit != 0 {
		return nil, ErrStandingLimit
	}
	if buffer <= 0 {
		buffer = DefaultSubscriberBuffer
	}
	q = q.normalized()
	s := &Standing{
		live:    l,
		q:       q,
		matched: map[store.TupleRef]bool{},
		byKey:   map[stKey][]store.TupleRef{},
		bus:     obs.NewBus[Notification](nil),
	}
	s.sub = s.bus.Subscribe(buffer)
	l.mu.Lock()
	defer l.mu.Unlock()
	select {
	case <-l.done:
		return nil, ErrLiveClosed
	default:
	}
	l.standing[s] = struct{}{}
	obs.LiveStandingQueries.Add(1)
	return s, nil
}

// DefaultSubscriberBuffer is the per-standing notification ring size used
// when Register gets buffer <= 0.
const DefaultSubscriberBuffer = 256

// apply folds one tap event into the matched set, emitting notifications
// for transitions. Runs on the dispatcher goroutine (plus Close).
func (s *Standing) apply(ev tapEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.clearKey {
		for _, ref := range s.byKey[ev.key] {
			if s.matched[ref] {
				delete(s.matched, ref)
				s.bus.Publish(Notification{Kind: NotifyUnmatch, Match: Match{Ref: ref}})
			}
		}
		delete(s.byKey, ev.key)
	}
	for i := range ev.events {
		e := &ev.events[i]
		ok := s.q.matches(e.Ref, &e.Tuple)
		was := s.matched[e.Ref]
		switch {
		case ok && !was:
			s.matched[e.Ref] = true
			k := stKey{traj: e.Ref.TrajectoryID, interp: e.Ref.Interpretation}
			s.byKey[k] = append(s.byKey[k], e.Ref)
			obs.LiveMatches.Inc()
			s.bus.Publish(Notification{Kind: NotifyMatch, Match: Match{Ref: e.Ref, Tuple: e.Tuple}})
		case ok && was:
			s.bus.Publish(Notification{Kind: NotifyUpdate, Match: Match{Ref: e.Ref, Tuple: e.Tuple}})
		case !ok && was:
			delete(s.matched, e.Ref)
			s.bus.Publish(Notification{Kind: NotifyUnmatch, Match: Match{Ref: e.Ref}})
		}
	}
}

// Query returns the (normalized) compiled query.
func (s *Standing) Query() Query { return s.q }

// Sub returns the notification subscription: Drain/Next/C/Done per obs.Sub.
func (s *Standing) Sub() *obs.Sub[Notification] { return s.sub }

// Matched returns a snapshot of the refs currently satisfying the
// predicate (unordered).
func (s *Standing) Matched() []store.TupleRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]store.TupleRef, 0, len(s.matched))
	for ref := range s.matched {
		out = append(out, ref)
	}
	return out
}

// MatchedCount returns the current matched-set size.
func (s *Standing) MatchedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.matched)
}

// Drops returns notifications lost to this subscription's ring.
func (s *Standing) Drops() int64 { return s.sub.Drops() }

// Lag returns undelivered notifications buffered in the ring.
func (s *Standing) Lag() int { return s.sub.Lag() }

// Close deregisters the standing query and closes its notification stream.
// Idempotent; safe concurrently with dispatch.
func (s *Standing) Close() {
	l := s.live
	l.mu.Lock()
	delete(l.standing, s)
	l.mu.Unlock()
	s.release()
}

// release closes the notification stream and settles the gauge exactly once.
func (s *Standing) release() {
	s.closeOnce.Do(func() {
		obs.LiveStandingQueries.Add(-1)
		s.bus.Close()
	})
}
