package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/store"
)

var t0 = time.Date(2010, 3, 15, 8, 0, 0, 0, time.UTC)

// mkTuple builds an episode-backed tuple (the shape the pipeline stores).
func mkTuple(kind episode.Kind, start, end time.Time, center geo.Point, anns ...core.Annotation) *core.EpisodeTuple {
	ep := &episode.Episode{
		Kind:   kind,
		Start:  start,
		End:    end,
		Center: center,
		Bounds: geo.RectAround(center, 30),
	}
	tp := &core.EpisodeTuple{Kind: kind, TimeIn: start, TimeOut: end, Episode: ep}
	for _, a := range anns {
		tp.Annotations.Add(a)
	}
	return tp
}

func ann(key, value string) core.Annotation {
	return core.Annotation{Key: key, Value: value, Confidence: 0.9, Source: "test"}
}

// stored mirrors what the test wrote into the store: the reference the
// engine is checked against, filtered by an independent reimplementation of
// the predicate semantics.
type stored struct {
	ref store.TupleRef
	tp  *core.EpisodeTuple
}

// bruteMatches is the test's own predicate evaluation, deliberately written
// against the documented semantics rather than sharing code with Query.
func bruteMatches(q Query, s stored) bool {
	interp := q.Interpretation
	if interp == "" {
		interp = DefaultInterpretation
	}
	if s.ref.Interpretation != interp {
		return false
	}
	if q.ObjectID != "" && s.ref.ObjectID != q.ObjectID {
		return false
	}
	if q.TrajectoryID != "" && s.ref.TrajectoryID != q.TrajectoryID {
		return false
	}
	if q.Kind != nil && s.tp.Kind != *q.Kind {
		return false
	}
	if !q.From.IsZero() && s.tp.TimeOut.Before(q.From) {
		return false
	}
	if !q.To.IsZero() && s.tp.TimeIn.After(q.To) {
		return false
	}
	if q.AnnKey != "" && s.tp.Annotations.Value(q.AnnKey) != q.AnnValue {
		return false
	}
	if q.Window != nil && (s.tp.Episode == nil || !s.tp.Episode.Bounds.Intersects(*q.Window)) {
		return false
	}
	if q.Near != nil && (s.tp.Episode == nil || s.tp.Episode.Center.DistanceTo(*q.Near) > q.Radius) {
		return false
	}
	return true
}

func wantRefs(q Query, all []stored) []store.TupleRef {
	var out []store.TupleRef
	for _, s := range all {
		if bruteMatches(q, s) {
			out = append(out, s.ref)
		}
	}
	return out
}

func gotRefs(ms []Match) []store.TupleRef {
	var out []store.TupleRef
	for _, m := range ms {
		out = append(out, m.Ref)
	}
	return out
}

func sameRefSet(t *testing.T, label string, got, want []store.TupleRef) {
	t.Helper()
	gs := map[store.TupleRef]bool{}
	for _, r := range got {
		if gs[r] {
			t.Fatalf("%s: duplicate result %+v", label, r)
		}
		gs[r] = true
	}
	if len(gs) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(gs), len(want))
	}
	for _, r := range want {
		if !gs[r] {
			t.Fatalf("%s: missing %+v", label, r)
		}
	}
}

// populate writes a deterministic random tuple workload and returns the
// mirror. With an engine already attached the appends exercise live index
// maintenance; without one, NewEngine's backfill.
func populate(t *testing.T, st *store.Store, seed int64, objects, trajPerObject, tuplesPerTraj int) []stored {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	categories := []string{"restaurant", "shop", "office", "park", "station"}
	modes := []string{"walk", "bus", "car"}
	var all []stored
	for o := 0; o < objects; o++ {
		obj := fmt.Sprintf("u%d", o)
		for tj := 0; tj < trajPerObject; tj++ {
			id := fmt.Sprintf("%s-T%d", obj, tj)
			at := t0.Add(time.Duration(tj) * 24 * time.Hour)
			for i := 0; i < tuplesPerTraj; i++ {
				kind := episode.Move
				var anns []core.Annotation
				if i%2 == 0 {
					kind = episode.Stop
					anns = append(anns, ann(core.AnnPOICategory, categories[rng.Intn(len(categories))]))
				} else {
					anns = append(anns, ann(core.AnnTransportMode, modes[rng.Intn(len(modes))]))
				}
				end := at.Add(time.Duration(5+rng.Intn(40)) * time.Minute)
				center := geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
				tp := mkTuple(kind, at, end, center, anns...)
				if err := st.AppendStructuredTuples(id, obj, DefaultInterpretation, tp); err != nil {
					t.Fatal(err)
				}
				all = append(all, stored{
					ref: store.TupleRef{TrajectoryID: id, ObjectID: obj, Interpretation: DefaultInterpretation, Index: i},
					tp:  tp,
				})
				at = end
			}
		}
	}
	return all
}

func randomQuery(rng *rand.Rand) Query {
	var q Query
	if rng.Intn(3) == 0 {
		q.ObjectID = fmt.Sprintf("u%d", rng.Intn(6))
	}
	if rng.Intn(4) == 0 {
		q.TrajectoryID = fmt.Sprintf("u%d-T%d", rng.Intn(6), rng.Intn(3))
	}
	if rng.Intn(3) == 0 {
		k := episode.Stop
		if rng.Intn(2) == 0 {
			k = episode.Move
		}
		q.Kind = &k
	}
	if rng.Intn(2) == 0 {
		from := t0.Add(time.Duration(rng.Intn(72)) * time.Hour)
		q.From = from
		q.To = from.Add(time.Duration(1+rng.Intn(24)) * time.Hour)
	}
	if rng.Intn(2) == 0 {
		q.AnnKey = core.AnnPOICategory
		q.AnnValue = []string{"restaurant", "shop", "office"}[rng.Intn(3)]
	}
	switch rng.Intn(4) {
	case 0:
		w := geo.RectAround(geo.Pt(rng.Float64()*2000, rng.Float64()*2000), 100+rng.Float64()*500)
		q.Window = &w
	case 1:
		p := geo.Pt(rng.Float64()*2000, rng.Float64()*2000)
		q.Near = &p
		q.Radius = 100 + rng.Float64()*500
	}
	return q
}

// TestEngineMatchesBruteForce is the engine's quick-check: random workloads,
// random queries, engine results must equal an independent brute-force
// filter — both when the engine was built after the data (backfill) and
// when it was attached before (live maintenance).
func TestEngineMatchesBruteForce(t *testing.T) {
	for _, mode := range []string{"backfill", "live"} {
		t.Run(mode, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			st := store.NewSharded(8)
			var e *Engine
			if mode == "live" {
				e = NewEngine(st)
			}
			all := populate(t, st, 42, 6, 3, 12)
			if mode == "backfill" {
				e = NewEngine(st)
			}
			for i := 0; i < 200; i++ {
				q := randomQuery(rng)
				ms, plan, err := e.ExecuteExplained(q)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("query %d (%+v, plan %s)", i, q, plan)
				sameRefSet(t, label, gotRefs(ms), wantRefs(q, all))
				for j := 1; j < len(ms); j++ {
					if !ms[j-1].less(&ms[j]) {
						t.Fatalf("%s: results out of order at %d", label, j)
					}
				}
			}
			if stats := e.IndexStats(); stats.IndexedTuples != len(all) {
				t.Fatalf("IndexStats.IndexedTuples = %d want %d", stats.IndexedTuples, len(all))
			}
		})
	}
}

// TestEngineReplaceAndUpdate exercises the two non-append write paths:
// PutStructured replacement and MergeTupleAnnotations re-annotation.
func TestEngineReplaceAndUpdate(t *testing.T) {
	st := store.New()
	e := NewEngine(st)

	old := mkTuple(episode.Stop, t0, t0.Add(time.Hour), geo.Pt(100, 100), ann(core.AnnPOICategory, "shop"))
	if err := st.AppendStructuredTuples("u1-T0", "u1", "merged", old); err != nil {
		t.Fatal(err)
	}
	// Replace the interpretation with different content.
	repl := &core.StructuredTrajectory{ID: "u1-T0", ObjectID: "u1", Interpretation: "merged"}
	repl.Tuples = append(repl.Tuples,
		mkTuple(episode.Stop, t0, t0.Add(30*time.Minute), geo.Pt(500, 500), ann(core.AnnPOICategory, "park")))
	if err := st.PutStructured(repl); err != nil {
		t.Fatal(err)
	}
	if ms, _ := e.Execute(Query{AnnKey: core.AnnPOICategory, AnnValue: "shop"}); len(ms) != 0 {
		t.Fatalf("stale annotation survived replacement: %+v", ms)
	}
	ms, err := e.Execute(Query{AnnKey: core.AnnPOICategory, AnnValue: "park"})
	if err != nil || len(ms) != 1 || ms[0].Ref.Index != 0 {
		t.Fatalf("replacement content not queryable: %+v, %v", ms, err)
	}

	// Re-annotate in place through the store (the streaming close path).
	if err := st.MergeTupleAnnotations("u1-T0", "merged", 0, nil,
		[]core.Annotation{ann(core.AnnActivity, "leisure")}); err != nil {
		t.Fatal(err)
	}
	ms, err = e.Execute(Query{AnnKey: core.AnnActivity, AnnValue: "leisure"})
	if err != nil || len(ms) != 1 {
		t.Fatalf("updated annotation not queryable: %+v, %v", ms, err)
	}
	if ms[0].Tuple.Annotations.Value(core.AnnPOICategory) != "park" {
		t.Fatal("update lost existing annotations")
	}
	if err := st.MergeTupleAnnotations("u1-T0", "merged", 7, nil, nil); err == nil {
		t.Fatal("merge into a missing tuple should fail")
	}
}

// TestPlannerPicksSelectivePath pins the access-path selection on a
// workload where the right answer is unambiguous.
func TestPlannerPicksSelectivePath(t *testing.T) {
	st := store.New()
	e := NewEngine(st)
	all := populate(t, st, 3, 8, 2, 20)
	if len(all) == 0 {
		t.Fatal("empty workload")
	}

	cases := []struct {
		name string
		q    Query
		want Path
	}{
		{"trajectory beats all", Query{TrajectoryID: "u0-T0", ObjectID: "u0", AnnKey: core.AnnPOICategory, AnnValue: "shop"}, PathTrajectory},
		{"annotation when selective", Query{AnnKey: core.AnnPOICategory, AnnValue: "restaurant"}, PathAnnotation},
		{"object for object queries", Query{ObjectID: "u1", From: t0, To: t0.Add(2 * time.Hour)}, PathObjectTime},
		{"spatial when only geometry", Query{Near: &geo.Point{X: 100, Y: 100}, Radius: 50}, PathSpatial},
		{"scan when nothing is indexed", Query{Kind: func() *episode.Kind { k := episode.Stop; return &k }()}, PathScan},
	}
	for _, c := range cases {
		plan, err := e.Explain(c.q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Path != c.want {
			t.Fatalf("%s: planned %s, want %s (%s)", c.name, plan.Path, c.want, plan)
		}
		if plan.String() == "" {
			t.Fatalf("%s: empty plan string", c.name)
		}
	}
}

// TestQueryValidation pins the error cases and the limit.
func TestQueryValidation(t *testing.T) {
	st := store.New()
	e := NewEngine(st)
	populate(t, st, 5, 2, 1, 8)

	bad := []Query{
		{Near: &geo.Point{}, Radius: 0},
		{Radius: 5},
		{From: t0.Add(time.Hour), To: t0},
		{Limit: -1},
		{AnnValue: "x"},
		{Window: &geo.Rect{Min: geo.Pt(1, 1), Max: geo.Pt(0, 0)}},
	}
	for i, q := range bad {
		if _, err := e.Execute(q); err == nil {
			t.Fatalf("bad query %d accepted", i)
		}
	}
	msAll, err := e.Execute(Query{})
	if err != nil || len(msAll) == 0 {
		t.Fatalf("zero query: %v, %d", err, len(msAll))
	}
	ms2, err := e.Execute(Query{Limit: 3})
	if err != nil || len(ms2) != 3 {
		t.Fatalf("limit: %v, %d", err, len(ms2))
	}
	if !reflect.DeepEqual(gotRefs(ms2), gotRefs(msAll)[:3]) {
		t.Fatal("limit must truncate the sorted result, not an arbitrary subset")
	}
}
