// Package query is the read-side counterpart of the ingestion pipeline: a
// typed, composable query engine over the semantic trajectory store, built
// for the workload the paper serves from PostgreSQL/PostGIS — "who stopped
// at a restaurant between 12:00 and 14:00 inside this region" (§1, §5).
//
// A Query is a conjunction of predicates over the stored episode tuples:
// moving object, trajectory, interpretation, episode kind, time window,
// annotation key/value (POI category, land-use class, transport mode, ...)
// and spatial window or radius over the episode's geometry. The Engine
// plans each query by ranking the access paths its predicates make
// available — an inverted annotation index, a per-object time-ordered
// index, an incremental spatial grid over episode geometry, direct
// trajectory lookup, or the full scan every other engine falls back to —
// and picks the one with the smallest candidate estimate (see Plan).
//
// The indexes are maintained incrementally from the store's own append
// path (store.AttachIndex), sharded to match the store's lock stripes, so
// the engine serves queries while StreamProcessor ingestion is running.
// Execution is index-assisted but store-verified: indexes only nominate
// candidate refs, and every candidate is resolved against the store's
// current content under its stripe lock and re-checked against all
// predicates. A result can therefore never be a phantom (a tuple the store
// does not hold) or a torn read (a tuple copied while a writer was
// mutating it); at worst a tuple appended concurrently with the query is
// missed, exactly as if the query had run a moment earlier.
package query

import (
	"errors"
	"fmt"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/store"
)

// DefaultInterpretation is the interpretation queried when Query leaves it
// empty: the merged per-episode view carrying every layer's annotations.
const DefaultInterpretation = "merged"

// Query is a conjunction of predicates over stored episode tuples. The zero
// value of each field disables that predicate; the zero Query matches every
// tuple of the merged interpretation.
type Query struct {
	// ObjectID restricts results to one moving object.
	ObjectID string
	// TrajectoryID restricts results to one trajectory.
	TrajectoryID string
	// Interpretation selects the structured interpretation to query
	// (DefaultInterpretation when empty).
	Interpretation string
	// Kind restricts results to stop or move episodes (nil matches both).
	Kind *episode.Kind
	// From/To restrict results to tuples overlapping the closed time window
	// [From, To]; a zero bound is open on that side.
	From time.Time
	To   time.Time
	// AnnKey/AnnValue restrict results to tuples whose annotation AnnKey has
	// value AnnValue. An empty AnnValue (with a non-empty AnnKey) matches
	// tuples *without* the key, mirroring AnnotationSet.Value semantics.
	AnnKey   string
	AnnValue string
	// Window restricts results to tuples whose episode bounding rectangle
	// intersects it. Only tuples backed by an episode have geometry.
	Window *geo.Rect
	// Near/Radius restrict results to tuples whose episode centre lies
	// within Radius metres of Near.
	Near   *geo.Point
	Radius float64
	// Limit caps the number of results (after the deterministic sort);
	// 0 means unlimited.
	Limit int
}

// normalized returns the query with defaults applied.
func (q Query) normalized() Query {
	if q.Interpretation == "" {
		q.Interpretation = DefaultInterpretation
	}
	return q
}

// Validate checks the structural invariants of the query.
func (q Query) Validate() error {
	if q.Near != nil && q.Radius <= 0 {
		return errors.New("query: Near requires a positive Radius")
	}
	if q.Near == nil && q.Radius != 0 {
		return errors.New("query: Radius requires Near")
	}
	if q.Window != nil && q.Window.IsEmpty() {
		return errors.New("query: empty spatial window")
	}
	if !q.From.IsZero() && !q.To.IsZero() && q.To.Before(q.From) {
		return fmt.Errorf("query: window ends (%v) before it starts (%v)", q.To, q.From)
	}
	if q.Limit < 0 {
		return errors.New("query: negative limit")
	}
	if q.AnnKey == "" && q.AnnValue != "" {
		return errors.New("query: AnnValue requires AnnKey")
	}
	return nil
}

// matches reports whether a tuple (resolved from the store at ref) satisfies
// every predicate of the (normalized) query. This runs on every candidate an
// access path nominates, so results are correct regardless of which path the
// planner picked.
func (q *Query) matches(ref store.TupleRef, tp *core.EpisodeTuple) bool {
	if ref.Interpretation != q.Interpretation {
		return false
	}
	if q.ObjectID != "" && ref.ObjectID != q.ObjectID {
		return false
	}
	if q.TrajectoryID != "" && ref.TrajectoryID != q.TrajectoryID {
		return false
	}
	if q.Kind != nil && tp.Kind != *q.Kind {
		return false
	}
	if !q.From.IsZero() && tp.TimeOut.Before(q.From) {
		return false
	}
	if !q.To.IsZero() && tp.TimeIn.After(q.To) {
		return false
	}
	if q.AnnKey != "" && tp.Annotations.Value(q.AnnKey) != q.AnnValue {
		return false
	}
	if q.Window != nil {
		if tp.Episode == nil || !tp.Episode.Bounds.Intersects(*q.Window) {
			return false
		}
	}
	if q.Near != nil {
		if tp.Episode == nil || tp.Episode.Center.DistanceTo(*q.Near) > q.Radius {
			return false
		}
	}
	return true
}

// Match is one query result: the ref locating the tuple in the store plus a
// stable copy of the tuple taken under the store's stripe lock at resolution
// time. Matches are ordered by (object, trajectory, position).
type Match struct {
	Ref   store.TupleRef
	Tuple core.EpisodeTuple
}

// less is the canonical result order: object, then trajectory, then tuple
// position — deterministic across shard layouts and access paths.
func (m *Match) less(o *Match) bool {
	if m.Ref.ObjectID != o.Ref.ObjectID {
		return m.Ref.ObjectID < o.Ref.ObjectID
	}
	if m.Ref.TrajectoryID != o.Ref.TrajectoryID {
		return m.Ref.TrajectoryID < o.Ref.TrajectoryID
	}
	return m.Ref.Index < o.Ref.Index
}
