package query

import (
	"time"

	"semitri/internal/episode"
	"semitri/internal/geo"
)

// Option configures one predicate of a Query under construction with Build.
type Option func(*Query)

// ForObject restricts the query to one moving object.
func ForObject(id string) Option { return func(q *Query) { q.ObjectID = id } }

// ForTrajectory restricts the query to one trajectory.
func ForTrajectory(id string) Option { return func(q *Query) { q.TrajectoryID = id } }

// InInterpretation selects the structured interpretation to query
// (DefaultInterpretation when the option is not given).
func InInterpretation(name string) Option { return func(q *Query) { q.Interpretation = name } }

// OfKind restricts results to one episode kind.
func OfKind(k episode.Kind) Option {
	return func(q *Query) { kk := k; q.Kind = &kk }
}

// OnlyStops restricts results to stop episodes.
func OnlyStops() Option { return OfKind(episode.Stop) }

// OnlyMoves restricts results to move episodes.
func OnlyMoves() Option { return OfKind(episode.Move) }

// Since keeps tuples overlapping [t, ...) — the closed window's lower bound.
func Since(t time.Time) Option { return func(q *Query) { q.From = t } }

// Until keeps tuples overlapping (..., t] — the closed window's upper bound.
func Until(t time.Time) Option { return func(q *Query) { q.To = t } }

// Between keeps tuples overlapping the closed time window [from, to].
func Between(from, to time.Time) Option {
	return func(q *Query) { q.From, q.To = from, to }
}

// WithAnnotation keeps tuples whose annotation key has the given value (an
// empty value asks for tuples *without* the key, mirroring
// AnnotationSet.Value).
func WithAnnotation(key, value string) Option {
	return func(q *Query) { q.AnnKey, q.AnnValue = key, value }
}

// InWindow keeps tuples whose episode bounding rectangle intersects w.
func InWindow(w geo.Rect) Option {
	return func(q *Query) { ww := w; q.Window = &ww }
}

// NearPoint keeps tuples whose episode centre lies within radius metres of p.
func NearPoint(p geo.Point, radius float64) Option {
	return func(q *Query) { pp := p; q.Near = &pp; q.Radius = radius }
}

// WithLimit caps the number of results (after the deterministic sort).
func WithLimit(n int) Option { return func(q *Query) { q.Limit = n } }

// Build is the validating constructor for Query: it applies the options and
// checks the structural invariants immediately, so a malformed predicate set
// (a radius without a centre, a window that ends before it starts, ...) is
// an error at construction time rather than at the first Execute. Prefer it
// over composing a Query literal — the engine re-validates on every
// execution, but a built Query can never carry an invariant violation to a
// call site far from where it was assembled.
func Build(opts ...Option) (Query, error) {
	var q Query
	for _, o := range opts {
		o(&q)
	}
	if err := q.Validate(); err != nil {
		return Query{}, err
	}
	return q, nil
}

// MustBuild is Build for statically known predicate sets: it panics on a
// validation error. Intended for tests, examples and constant query tables.
func MustBuild(opts ...Option) Query {
	q, err := Build(opts...)
	if err != nil {
		panic(err)
	}
	return q
}
