package query

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/obs"
	"semitri/internal/spatial"
	"semitri/internal/store"
)

// Engine executes Queries over a Store through incrementally maintained
// secondary indexes. NewEngine attaches the engine to the store's append
// path (store.AttachIndex) and backfills from the store's current content,
// so it can be created before ingestion starts or over an already-loaded
// snapshot. An Engine is safe for concurrent use, including concurrently
// with live StreamProcessor ingestion into the same store.
//
// The engine's state is lock-striped like the store, with as many stripes
// as the store has, but each index is partitioned by its own natural key so
// a point lookup touches exactly one stripe:
//
//   - the inverted annotation index — (interpretation, key, value) → refs —
//     is striped by the hash of that triple,
//   - the per-object episode index (time-ordered by TimeIn) and the
//     idempotency bitmaps are striped by object id with the store's own
//     KeyHash, so objects that do not contend in the store do not contend
//     here either,
//   - the spatial index (spatial.HashGrid over episode bounding rectangles,
//     kind-tagged) is one engine-wide grid — window queries have no key to
//     route by, and episode closes are rare next to record appends, so a
//     single write lock never shows up in ingestion (see spatialIndex).
//
// Replaced interpretations and re-annotated tuples leave their old postings
// behind (removal would need a scan); stale postings cost a wasted
// resolution at query time, never a wrong result, because every candidate
// is re-verified against the store (see the package comment).
type Engine struct {
	st        *store.Store
	objShards []*objectShard
	annShards []*annShard
	spatial   spatialIndex
	// total counts indexed tuple positions — the full-scan cost estimate,
	// atomic so planning never locks for it.
	total atomic.Int64
	// par and serialThreshold hold the Options knobs (see parallel.go);
	// atomic so SetParallelism is safe against in-flight queries.
	par             atomic.Int32
	serialThreshold atomic.Int32
}

// objectShard is one object-routed stripe: time postings and the indexed
// bitmaps of the objects hashed here.
type objectShard struct {
	mu sync.RWMutex
	// objects holds each object's episode postings, sorted by TimeIn.
	objects map[string][]timedRef
	// indexed marks, per structured trajectory, which tuple positions were
	// indexed already — the idempotency guard that makes append
	// notifications, the backfill scan and replacement re-deliveries safe
	// to overlap.
	indexed map[stKey][]bool
}

// spatialIndex is the engine-wide episode-geometry index: one incremental
// grid behind its own RWMutex rather than a stripe per object, because a
// window query has no object to route by — striping would turn every
// lookup into a full fan-out. Writes are rare relative to reads (one insert
// per closed episode, versus one store append per GPS record), so a single
// write lock does not contend with ingestion in practice.
type spatialIndex struct {
	mu   sync.RWMutex
	grid *spatial.HashGrid
}

// spatialRef is the value stored with each episode rectangle: the ref plus
// the immutable prefilter fields, so kind- and interpretation-filtered
// window queries never resolve candidates of the wrong kind.
type spatialRef struct {
	ref  store.TupleRef
	kind episode.Kind
}

// annShard is one annotation-routed stripe of the inverted index.
type annShard struct {
	mu  sync.RWMutex
	ann map[annKey][]store.TupleRef
}

// annKey addresses one inverted-index posting list.
type annKey struct {
	interp string
	key    string
	value  string
}

// hash routes the key to an annotation stripe: FNV-1a over the three fields
// with NUL separators, folded incrementally so no joined string is ever
// allocated — this runs once per annotation on the ingest path and once per
// estimate/gather on the query path.
func (k annKey) hash() uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, s := range [...]string{k.interp, k.key, k.value} {
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= prime32
		}
		h *= prime32 // the NUL separator: h ^= 0 is a no-op
	}
	return h
}

// stKey addresses one structured trajectory.
type stKey struct {
	traj   string
	interp string
}

// timedRef is one entry of the per-object time index: the ref plus the
// immutable tuple fields the executor prefilters on before paying for store
// resolution.
type timedRef struct {
	ref     store.TupleRef
	timeIn  time.Time
	timeOut time.Time
	kind    episode.Kind
}

// SpatialCellSize is the bucket size of the episode grid, sized for
// city-scale episode geometry (a few hundred metres per stop/move).
const SpatialCellSize = 250.0

// NewEngine builds an engine over the store with default Options, attaches
// it to the store's append path and backfills the indexes from the store's
// current content. Creating a second engine over the same store detaches the
// first from future updates.
func NewEngine(st *store.Store) *Engine {
	return NewEngineWith(st, Options{})
}

// NewEngineWith is NewEngine with explicit execution Options.
func NewEngineWith(st *store.Store, opts Options) *Engine {
	n := st.ShardCount()
	e := &Engine{
		st:        st,
		objShards: make([]*objectShard, n),
		annShards: make([]*annShard, n),
	}
	e.par.Store(int32(opts.Parallelism))
	e.serialThreshold.Store(int32(opts.SerialThreshold))
	for i := 0; i < n; i++ {
		e.objShards[i] = &objectShard{
			objects: map[string][]timedRef{},
			indexed: map[stKey][]bool{},
		}
		e.annShards[i] = &annShard{ann: map[annKey][]store.TupleRef{}}
	}
	e.spatial.grid = spatial.NewHashGrid(SpatialCellSize)
	// Attach first, then backfill: tuples appended between the two steps are
	// delivered twice (once by the notification, once by the scan) and
	// deduplicated by the indexed bitmap; tuples appended before the attach
	// are picked up by the scan.
	st.AttachIndex(e)
	st.VisitStructuredTuples("", func(ref store.TupleRef, t core.EpisodeTuple) bool {
		e.index(ref, &t)
		return true
	})
	return e
}

// Store returns the store the engine executes against.
func (e *Engine) Store() *store.Store { return e.st }

// objShardFor routes an object id to its stripe (the store's own hash, so
// object routing agrees everywhere).
func (e *Engine) objShardFor(objectID string) *objectShard {
	if len(e.objShards) == 1 {
		return e.objShards[0]
	}
	return e.objShards[store.KeyHash(objectID)%uint32(len(e.objShards))]
}

// annShardFor routes an annotation key to its stripe.
func (e *Engine) annShardFor(k annKey) *annShard {
	if len(e.annShards) == 1 {
		return e.annShards[0]
	}
	return e.annShards[k.hash()%uint32(len(e.annShards))]
}

// index inserts one tuple's postings into the time, spatial and annotation
// indexes, guarded by the idempotency bitmap.
func (e *Engine) index(ref store.TupleRef, tp *core.EpisodeTuple) {
	sh := e.objShardFor(ref.ObjectID)
	sh.mu.Lock()
	if !sh.mark(ref) {
		sh.mu.Unlock()
		return // duplicate delivery (backfill overlapped a notification)
	}
	// Per-object time index: insertion-sort by TimeIn. Episodes close in
	// time order per object, so this is an append in the common case.
	tr := timedRef{ref: ref, timeIn: tp.TimeIn, timeOut: tp.TimeOut, kind: tp.Kind}
	refs := sh.objects[ref.ObjectID]
	pos := sort.Search(len(refs), func(i int) bool { return refs[i].timeIn.After(tr.timeIn) })
	refs = append(refs, timedRef{})
	copy(refs[pos+1:], refs[pos:])
	refs[pos] = tr
	sh.objects[ref.ObjectID] = refs
	sh.mu.Unlock()

	if tp.Episode != nil {
		e.spatial.mu.Lock()
		e.spatial.grid.Insert(spatial.Item{
			Rect:  tp.Episode.Bounds,
			Value: spatialRef{ref: ref, kind: tp.Kind},
		})
		e.spatial.mu.Unlock()
	}
	e.total.Add(1)
	e.indexAnnotations(ref, tp.Annotations.All())
}

// mark sets the indexed bit for ref, reporting false when it was already
// set. Caller holds sh.mu.
func (sh *objectShard) mark(ref store.TupleRef) bool {
	key := stKey{traj: ref.TrajectoryID, interp: ref.Interpretation}
	seen := sh.indexed[key]
	if ref.Index < len(seen) && seen[ref.Index] {
		return false
	}
	for len(seen) <= ref.Index {
		seen = append(seen, false)
	}
	seen[ref.Index] = true
	sh.indexed[key] = seen
	return true
}

// marked reports whether ref's indexed bit is set.
func (sh *objectShard) marked(ref store.TupleRef) bool {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	seen := sh.indexed[stKey{traj: ref.TrajectoryID, interp: ref.Interpretation}]
	return ref.Index < len(seen) && seen[ref.Index]
}

// indexAnnotations adds inverted-index postings for the given annotations,
// each into its own stripe. A tuple is briefly time-indexed before it is
// annotation-indexed; queries in that window just miss it, as if they had
// run a moment earlier.
func (e *Engine) indexAnnotations(ref store.TupleRef, anns []core.Annotation) {
	for _, a := range anns {
		if a.Value == "" {
			continue
		}
		k := annKey{interp: ref.Interpretation, key: a.Key, value: a.Value}
		sh := e.annShardFor(k)
		sh.mu.Lock()
		sh.ann[k] = append(sh.ann[k], ref)
		sh.mu.Unlock()
	}
}

// TuplesAppended implements store.Index.
func (e *Engine) TuplesAppended(events []store.TupleEvent) {
	for i := range events {
		ev := &events[i]
		e.index(ev.Ref, &ev.Tuple)
	}
}

// StructuredReplaced implements store.Index: the whole tuple sequence of a
// structured trajectory was swapped (PutStructured). The indexed bitmap for
// it is reset so the new content indexes fresh; postings of the old content
// become stale and are dropped lazily at verification.
func (e *Engine) StructuredReplaced(trajectoryID, objectID, interpretation string, events []store.TupleEvent) {
	sh := e.objShardFor(objectID)
	key := stKey{traj: trajectoryID, interp: interpretation}
	sh.mu.Lock()
	dropped := int64(0)
	for _, b := range sh.indexed[key] {
		if b {
			dropped++
		}
	}
	delete(sh.indexed, key)
	sh.mu.Unlock()
	e.total.Add(-dropped)
	for i := range events {
		ev := &events[i]
		e.index(ev.Ref, &ev.Tuple)
	}
}

// TupleUpdated implements store.Index: a stored tuple gained annotations in
// place (the streaming close path merging the point layer's results). For
// an already-indexed position only the changed annotations need postings —
// time and geometry are immutable; an unmarked position (the update raced
// ahead of the backfill) indexes fully from the event's copy.
func (e *Engine) TupleUpdated(event store.TupleEvent) {
	if e.objShardFor(event.Ref.ObjectID).marked(event.Ref) {
		e.indexAnnotations(event.Ref, event.Changed)
		return
	}
	e.index(event.Ref, &event.Tuple)
}

// Execute plans and runs the query, returning matches in the canonical
// (object, trajectory, position) order. See Explain for the chosen plan.
func (e *Engine) Execute(q Query) ([]Match, error) {
	q = q.normalized()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	path := e.planLean(&q, &estimates{})
	out := e.executeBuf(&q, path, nil, 0, nil)
	obs.QueryByPath[pathRank(path)].Inc()
	obs.QueryReturned.Add(int64(len(out)))
	return out, nil
}

// ExecuteExplained runs the query and also returns the plan it executed.
func (e *Engine) ExecuteExplained(q Query) ([]Match, Plan, error) {
	q = q.normalized()
	if err := q.Validate(); err != nil {
		return nil, Plan{}, err
	}
	t0 := time.Now()
	p := e.plan(q)
	planNs := time.Since(t0).Nanoseconds()
	t1 := time.Now()
	out := e.executeBuf(&q, p.Path, nil, 0, nil)
	obs.QueryByPath[pathRank(p.Path)].Inc()
	obs.QueryPlanNs.ObserveNs(planNs)
	obs.QueryExecNs.ObserveNs(time.Since(t1).Nanoseconds())
	obs.QueryReturned.Add(int64(len(out)))
	return out, p, nil
}

// executeBuf gathers the chosen path's candidates, resolves them against the
// store, verifies every predicate and appends the matches to out (reusing
// its capacity), returning them in canonical order with Limit applied. q is
// normalized and valid, and must not escape — callers may reuse it.
// maxWorkers further caps the engine's parallelism for this execution; join
// probes pass 1 so the per-row fan-out (already parallel across rows) never
// nests goroutine pools. tr, when non-nil, collects per-stage timings and
// segment-prune decisions; probe hot paths pass nil, so tracing costs them
// nothing but the nil checks.
func (e *Engine) executeBuf(q *Query, path Path, out []Match, maxWorkers int, tr *Trace) []Match {
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	switch path {
	case PathTrajectory:
		// Stored order is canonical order (one object, one trajectory,
		// ascending positions), so the limit stops the walk early.
		base := len(out)
		objectID, tuples, ok := e.st.TupleSnapshot(q.TrajectoryID, q.Interpretation)
		if !ok {
			tr.stage("store-walk", t0, 0)
			return out
		}
		for i := range tuples {
			ref := store.TupleRef{
				TrajectoryID:   q.TrajectoryID,
				ObjectID:       objectID,
				Interpretation: q.Interpretation,
				Index:          i,
			}
			if q.matches(ref, &tuples[i]) {
				out = append(out, Match{Ref: ref, Tuple: tuples[i]})
				if q.Limit > 0 && len(out) >= q.Limit {
					break
				}
			}
		}
		obs.QueryCandidates.Add(int64(len(tuples)))
		tr.addCandidates(len(tuples))
		tr.stage("store-walk", t0, len(out)-base)
		return out
	case PathScan:
		// Stripe order is not canonical, so the scan collects everything and
		// sorts; the comparator is a total order on the unique ref key, so
		// the unit interleaving of a parallel scan cannot show. A freeze
		// racing the scan can emit one logical ref from both the segment and
		// the still-unevicted heap (never neither), so adjacent duplicate
		// refs collapse after the sort.
		base := len(out)
		out = e.scanMatches(q, out, maxWorkers, tr)
		obs.QueryCandidates.Add(e.total.Load())
		tr.addCandidates(int(e.total.Load()))
		tr.stage("scan", t0, len(out)-base)
		var t1 time.Time
		if tr != nil {
			t1 = time.Now()
		}
		sort.Slice(out, func(i, j int) bool { return out[i].less(&out[j]) })
		dst := base
		for i := base; i < len(out); i++ {
			if i > base && out[i].Ref == out[dst-1].Ref {
				continue
			}
			out[dst] = out[i]
			dst++
		}
		out = out[:dst]
		if q.Limit > 0 && len(out) > q.Limit {
			out = out[:q.Limit]
		}
		tr.stage("sort-dedup", t1, len(out)-base)
		return out
	}
	sc := getScratch()
	sc.refs = e.gatherInto(q, path, sc.refs[:0])
	obs.QueryCandidates.Add(int64(len(sc.refs)))
	tr.addCandidates(len(sc.refs))
	tr.stage("gather", t0, len(sc.refs))
	var t1 time.Time
	if tr != nil {
		t1 = time.Now()
	}
	base := len(out)
	out = e.resolveRefs(q, sc, out, maxWorkers)
	tr.stage("resolve", t1, len(out)-base)
	putScratch(sc)
	return out
}

// gatherInto appends candidate refs from one indexed access path. Prefilters
// use only immutable posting fields; the authoritative check happens at
// resolution.
func (e *Engine) gatherInto(q *Query, path Path, refs []store.TupleRef) []store.TupleRef {
	switch path {
	case PathAnnotation:
		k := annKey{interp: q.Interpretation, key: q.AnnKey, value: q.AnnValue}
		sh := e.annShardFor(k)
		sh.mu.RLock()
		refs = append(refs, sh.ann[k]...)
		sh.mu.RUnlock()
	case PathObjectTime:
		sh := e.objShardFor(q.ObjectID)
		sh.mu.RLock()
		posted := sh.objects[q.ObjectID]
		// Postings are sorted by TimeIn: nothing after To can overlap.
		hi := len(posted)
		if !q.To.IsZero() {
			hi = sort.Search(len(posted), func(i int) bool { return posted[i].timeIn.After(q.To) })
		}
		for _, tr := range posted[:hi] {
			if tr.ref.Interpretation != q.Interpretation {
				continue
			}
			if !q.From.IsZero() && tr.timeOut.Before(q.From) {
				continue
			}
			if q.Kind != nil && tr.kind != *q.Kind {
				continue
			}
			refs = append(refs, tr.ref)
		}
		sh.mu.RUnlock()
	case PathSpatial:
		rect := q.spatialRect()
		e.spatial.mu.RLock()
		e.spatial.grid.Visit(rect, func(it spatial.Item) bool {
			sr := it.Value.(spatialRef)
			if sr.ref.Interpretation != q.Interpretation {
				return true
			}
			if q.Kind != nil && sr.kind != *q.Kind {
				return true
			}
			refs = append(refs, sr.ref)
			return true
		})
		e.spatial.mu.RUnlock()
	}
	return refs
}

// spatialRect returns the candidate rectangle of the spatial predicates
// (the window, the radius disc's bounding box, or their intersection). Only
// called when at least one spatial predicate is set.
func (q *Query) spatialRect() geo.Rect {
	if q.Near == nil {
		return *q.Window
	}
	r := geo.RectAround(*q.Near, q.Radius)
	if q.Window != nil {
		r = r.Intersection(*q.Window)
	}
	return r
}

// resolveRefs turns candidate refs into verified matches: dedup (paths can
// nominate a ref more than once — stale postings, re-annotation), resolve
// against the store, re-check every predicate. The refs in sc are sorted into
// the canonical *output* order — (object, trajectory, interpretation,
// position) — which deduplicates (adjacent equals), groups by trajectory
// with no map allocations, and means resolution emits matches already in
// final order: a limit stops the work as soon as it is met instead of after
// resolving everything, and parallel chunks concatenate without a merge
// sort. Each trajectory's run resolves with one store lock (one
// Store.AppendTuplesAt batch) — this is what makes indexed execution cheaper
// per candidate than a scan is per tuple.
func (e *Engine) resolveRefs(q *Query, sc *scratch, out []Match, maxWorkers int) []Match {
	refs := sc.refs
	if len(refs) == 0 {
		return out
	}
	sort.Slice(refs, func(i, j int) bool {
		a, b := &refs[i], &refs[j]
		if a.ObjectID != b.ObjectID {
			return a.ObjectID < b.ObjectID
		}
		if a.TrajectoryID != b.TrajectoryID {
			return a.TrajectoryID < b.TrajectoryID
		}
		if a.Interpretation != b.Interpretation {
			return a.Interpretation < b.Interpretation
		}
		return a.Index < b.Index
	})
	workers := e.workersFor(len(refs))
	if maxWorkers >= 1 {
		workers = min(workers, maxWorkers)
	}
	if workers <= 1 {
		return e.resolveChunk(nil, q, refs, out, sc)
	}
	return e.resolveParallel(q, refs, out, workers)
}

// resolveChunk resolves one contiguous range of canonically sorted refs,
// appending verified matches to out in that same order. It stops early once
// q.Limit matches are appended (the range's output prefix is the final
// output prefix), and, when ctx is non-nil, abandons the range between
// trajectory groups if a parallel sibling already satisfied the limit.
func (e *Engine) resolveChunk(ctx context.Context, q *Query, refs []store.TupleRef, out []Match, sc *scratch) []Match {
	base := len(out)
	for lo := 0; lo < len(refs); {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return out
			default:
			}
		}
		hi := lo + 1
		for hi < len(refs) &&
			refs[hi].TrajectoryID == refs[lo].TrajectoryID &&
			refs[hi].Interpretation == refs[lo].Interpretation {
			hi++
		}
		indexes := sc.indexes[:0]
		for i := lo; i < hi; i++ {
			if i > lo && refs[i].Index == refs[i-1].Index {
				continue // duplicate posting
			}
			indexes = append(indexes, refs[i].Index)
		}
		tuples, ok := e.st.AppendTuplesAt(refs[lo].TrajectoryID, refs[lo].Interpretation, indexes, sc.tuples[:0], sc.ok[:0])
		sc.indexes, sc.tuples, sc.ok = indexes, tuples, ok
		for i, idx := range indexes {
			if !ok[i] {
				continue // stale posting: the interpretation shrank on replace
			}
			ref := refs[lo]
			ref.Index = idx
			if !q.matches(ref, &tuples[i]) {
				continue
			}
			out = append(out, Match{Ref: ref, Tuple: tuples[i]})
			if q.Limit > 0 && len(out)-base >= q.Limit {
				return out
			}
		}
		lo = hi
	}
	return out
}

// Stats summarises the engine's index state.
type Stats struct {
	// IndexedTuples counts the distinct tuple positions indexed.
	IndexedTuples int
	// AnnotationPostings counts inverted-index entries (stale ones included).
	AnnotationPostings int
	// Objects counts moving objects with at least one posting.
	Objects int
	// SpatialItems counts episode rectangles in the spatial grid.
	SpatialItems int
	// Shards is the number of stripes per index.
	Shards int
	// Parallelism is the effective worker cap of parallel execution.
	Parallelism int
}

// IndexStats returns a snapshot of the engine's index state.
func (e *Engine) IndexStats() Stats {
	st := Stats{
		Shards:        len(e.objShards),
		IndexedTuples: int(e.total.Load()),
		Parallelism:   e.Parallelism(),
	}
	for _, sh := range e.objShards {
		sh.mu.RLock()
		st.Objects += len(sh.objects)
		sh.mu.RUnlock()
	}
	e.spatial.mu.RLock()
	st.SpatialItems = e.spatial.grid.Len()
	e.spatial.mu.RUnlock()
	for _, sh := range e.annShards {
		sh.mu.RLock()
		for _, refs := range sh.ann {
			st.AnnotationPostings += len(refs)
		}
		sh.mu.RUnlock()
	}
	return st
}
