package experiments

import (
	"fmt"
	"time"

	"semitri"
	"semitri/internal/core"
	"semitri/internal/geo"
	"semitri/internal/poi"
	"semitri/internal/query"
	"semitri/internal/store"
	"semitri/internal/workload"
)

// QueryServing measures the read path the serving layer depends on: typed
// queries executed through the query engine's incrementally maintained
// indexes versus the pre-index full-scan baseline, on a people workload.
// It reports ns/query for the three canonical shapes — annotation
// equality, per-object time window and spatial window — plus the
// scan/indexed speedup. This is not a paper figure: the paper delegates
// this work to PostgreSQL/PostGIS indexes; the row documents that the
// reproduction's own read side holds up the same way.
func QueryServing(env *Env) (*Table, error) {
	cfg := workload.DefaultPeopleConfig(6, env.scaleInt(5), env.Seed+21)
	ds, err := workload.GeneratePeople(env.City, cfg)
	if err != nil {
		return nil, err
	}
	p, _, err := runPipeline(env, ds, semitri.DefaultConfig())
	if err != nil {
		return nil, err
	}
	engine := p.QueryEngine()
	st := p.Store()

	day := ds.Records()[0].Time.Truncate(24 * time.Hour)
	annQueries := make([]query.Query, 0, len(poi.AllCategories))
	for _, cat := range poi.AllCategories {
		annQueries = append(annQueries, query.MustBuild(
			query.OnlyStops(),
			query.WithAnnotation(core.AnnPOICategory, cat.String()),
		))
	}
	var windowQueries []query.Query
	for i, obj := range ds.Objects {
		from := day.Add(time.Duration(6+2*i) * time.Hour)
		windowQueries = append(windowQueries, query.MustBuild(
			query.ForObject(obj),
			query.Between(from, from.Add(4*time.Hour)),
		))
	}
	// Stops inside a neighbourhood window — the paper's "who stopped inside
	// this region" shape. The kind tag on the spatial postings is what makes
	// this selective: move episodes' kilometre-wide bounding boxes intersect
	// almost any window.
	var spatialQueries []query.Query
	for i := 0; i < 8; i++ {
		w := geo.RectAround(geo.Pt(float64(1000+i*1100), float64(9000-i*1100)), 1200)
		spatialQueries = append(spatialQueries, query.MustBuild(
			query.OnlyStops(), query.InWindow(w),
		))
	}

	tbl := &Table{
		ID:    "query",
		Title: "query engine: indexed execution vs full-scan baseline (ns/query)",
		Notes: []string{
			"indexed = query.Engine with incrementally maintained indexes; scan = brute pass over the stored tuples",
			"expectation: indexed beats scan by >=5x on annotation and window queries at this workload size",
		},
	}
	for _, c := range []struct {
		label   string
		queries []query.Query
	}{
		{"annotation (poi category)", annQueries},
		{"time window (object, 4h)", windowQueries},
		{"spatial (2.4km window)", spatialQueries},
	} {
		indexed, hits, err := timeQueries(c.queries, func(q query.Query) (int, error) {
			ms, err := engine.Execute(q)
			return len(ms), err
		})
		if err != nil {
			return nil, err
		}
		scan, scanHits, err := timeQueries(c.queries, func(q query.Query) (int, error) {
			return scanCount(st, q), nil
		})
		if err != nil {
			return nil, err
		}
		if hits != scanHits {
			return nil, fmt.Errorf("query: indexed found %d results, scan %d", hits, scanHits)
		}
		speedup := scan / indexed
		tbl.Rows = append(tbl.Rows, Row{
			Label:   c.label,
			Columns: []string{"indexed_ns", "scan_ns", "speedup", "hits"},
			Values: map[string]float64{
				"indexed_ns": indexed,
				"scan_ns":    scan,
				"speedup":    speedup,
				"hits":       float64(hits),
			},
		})
	}
	return tbl, nil
}

// timeQueries runs the query set repeatedly until it accumulates enough
// wall-clock for a stable ns/query, returning also the total hit count of
// one pass (the correctness cross-check between the two executions).
func timeQueries(queries []query.Query, run func(query.Query) (int, error)) (nsPerQuery float64, hits int, err error) {
	const minDuration = 50 * time.Millisecond
	passes := 0
	start := time.Now()
	for {
		passHits := 0
		for _, q := range queries {
			n, err := run(q)
			if err != nil {
				return 0, 0, err
			}
			passHits += n
		}
		hits = passHits
		passes++
		if time.Since(start) >= minDuration && passes >= 3 {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(passes*len(queries)), hits, nil
}

// scanCount is the pre-index baseline: a brute pass over the stored tuples
// of the interpretation, applying every predicate — what the store could do
// before the engine existed.
func scanCount(st *store.Store, q query.Query) int {
	interp := q.Interpretation
	if interp == "" {
		interp = query.DefaultInterpretation
	}
	n := 0
	st.VisitStructuredTuples(interp, func(ref store.TupleRef, tp core.EpisodeTuple) bool {
		if q.ObjectID != "" && ref.ObjectID != q.ObjectID {
			return true
		}
		if q.TrajectoryID != "" && ref.TrajectoryID != q.TrajectoryID {
			return true
		}
		if q.Kind != nil && tp.Kind != *q.Kind {
			return true
		}
		if !q.From.IsZero() && tp.TimeOut.Before(q.From) {
			return true
		}
		if !q.To.IsZero() && tp.TimeIn.After(q.To) {
			return true
		}
		if q.AnnKey != "" && tp.Annotations.Value(q.AnnKey) != q.AnnValue {
			return true
		}
		if q.Window != nil && (tp.Episode == nil || !tp.Episode.Bounds.Intersects(*q.Window)) {
			return true
		}
		if q.Near != nil && (tp.Episode == nil || tp.Episode.Center.DistanceTo(*q.Near) > q.Radius) {
			return true
		}
		n++
		return true
	})
	return n
}
