package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"time"

	"semitri"
	"semitri/internal/query"
	"semitri/internal/workload"
)

// StorageEngine measures the tiered storage engine (internal/segment): what
// an incremental checkpoint costs as the store grows, what segment-backed
// cold reads cost against the all-heap baseline, how long a restart from
// segments takes, and the process's peak RSS. The headline property is
// asserted, not just reported: checkpoint cost must track the tail written
// since the last checkpoint, not the total store size — the segment bytes of
// a constant-size tail must stay flat while the store grows, and freezing a
// small tail must stay far below the initial full freeze.
func StorageEngine(env *Env) (*Table, error) {
	dir, err := os.MkdirTemp("", "semitri-storage-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	sources := semitri.Sources{
		Landuse: env.City.Landuse, Roads: env.City.Roads, POIs: env.City.POIs,
	}
	base := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	gen := func(users, days int, seed int64, start time.Time) (*workload.Dataset, error) {
		cfg := workload.DefaultPeopleConfig(users, days, seed)
		cfg.Start = start
		return workload.GeneratePeople(env.City, cfg)
	}

	tcfg := semitri.DefaultConfig()
	tcfg.Durability = semitri.Durability{Dir: dir, Storage: "segments", Fsync: "never"}
	tiered, err := semitri.New(sources, tcfg)
	if err != nil {
		return nil, err
	}
	defer tiered.Close()
	heap, err := semitri.New(sources, semitri.DefaultConfig())
	if err != nil {
		return nil, err
	}

	segBytes := func() int64 {
		var n int64
		ents, _ := os.ReadDir(dir)
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "seg-") && filepath.Ext(e.Name()) == ".seg" {
				if fi, err := e.Info(); err == nil {
					n += fi.Size()
				}
			}
		}
		return n
	}
	// checkpoint freezes the heap tail into a new segment and reports the
	// wall time plus the bytes that segment added.
	checkpoint := func() (ms float64, newBytes int64, err error) {
		pre := segBytes()
		start := time.Now()
		if err := tiered.Checkpoint(); err != nil {
			return 0, 0, err
		}
		return float64(time.Since(start).Microseconds()) / 1000, segBytes() - pre, nil
	}
	ingestBoth := func(ds *workload.Dataset) error {
		if _, err := tiered.ProcessRecords(ds.Records()); err != nil {
			return err
		}
		_, err := heap.ProcessRecords(ds.Records())
		return err
	}

	// Initial bulk load: the first freeze pays for the whole store.
	baseDS, err := gen(6, max(2, env.scaleInt(4)), env.Seed+61, base)
	if err != nil {
		return nil, err
	}
	if err := ingestBoth(baseDS); err != nil {
		return nil, err
	}
	baseMs, baseBytes, err := checkpoint()
	if err != nil {
		return nil, err
	}
	if baseBytes == 0 {
		return nil, fmt.Errorf("storage: initial freeze wrote no segment")
	}

	// Steady state: a constant-size tail (one user-day, fresh objects, a
	// disjoint time span) checkpointed while the total store keeps growing.
	const rounds = 5
	var tailMs, tailBytes [rounds]float64
	var lastStart time.Time
	for r := 0; r < rounds; r++ {
		start := base.AddDate(0, 0, 30*(r+1))
		ds, err := gen(1, 1, env.Seed+100+int64(r), start)
		if err != nil {
			return nil, err
		}
		if err := ingestBoth(ds); err != nil {
			return nil, err
		}
		ms, nb, err := checkpoint()
		if err != nil {
			return nil, err
		}
		tailMs[r], tailBytes[r] = ms, float64(nb)
		if nb == 0 {
			return nil, fmt.Errorf("storage: round %d freeze wrote no segment", r)
		}
		lastStart = start
	}
	minB, maxB := tailBytes[0], tailBytes[0]
	minMs, maxMs := tailMs[0], tailMs[0]
	for r := 1; r < rounds; r++ {
		minB, maxB = min(minB, tailBytes[r]), max(maxB, tailBytes[r])
		minMs, maxMs = min(minMs, tailMs[r]), max(maxMs, tailMs[r])
	}
	// The assertions behind the acceptance criterion. Bytes are
	// deterministic: a constant tail must freeze into a near-constant
	// segment no matter how large the store already is, and far below the
	// full freeze. Time gets generous slack (it rides on bytes).
	if maxB > 3*minB {
		return nil, fmt.Errorf("storage: steady-state freeze bytes drift with store size: min=%.0f max=%.0f", minB, maxB)
	}
	if 4*maxB > float64(baseBytes) {
		return nil, fmt.Errorf("storage: small-tail freeze (%.0f B) not far below full freeze (%d B)", maxB, baseBytes)
	}
	if maxMs > 2*baseMs {
		return nil, fmt.Errorf("storage: small-tail checkpoint (%.1f ms) slower than the full freeze (%.1f ms)", maxMs, baseMs)
	}

	// Cold reads: the same queries against the mostly-frozen store and the
	// all-heap twin, answers verified identical. The windowed scan covers
	// only the last tail's time span, so footer pruning skips every other
	// segment; the full scan decodes everything.
	tieredEng, heapEng := tiered.QueryEngine(), heap.QueryEngine()
	timeQuery := func(e *query.Engine, q query.Query) (float64, []query.Match, error) {
		ms, err := e.Execute(q) // warm once, keep for verification
		if err != nil {
			return 0, nil, err
		}
		const iters = 20
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := e.Execute(q); err != nil {
				return 0, nil, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / iters, ms, nil
	}
	windowQ := query.Query{From: lastStart, To: lastStart.AddDate(0, 0, 2)}
	fullQ := query.Query{}
	rows := make([]Row, 0, 6)
	for _, c := range []struct {
		label string
		q     query.Query
	}{
		{"query: time-window scan (pruned)", windowQ},
		{"query: full scan (no pruning)", fullQ},
	} {
		heapNs, heapMs, err := timeQuery(heapEng, c.q)
		if err != nil {
			return nil, err
		}
		tierNs, tierMs, err := timeQuery(tieredEng, c.q)
		if err != nil {
			return nil, err
		}
		if !reflect.DeepEqual(heapMs, tierMs) {
			return nil, fmt.Errorf("storage: %s: tiered answer diverges from all-heap (%d vs %d matches)",
				c.label, len(tierMs), len(heapMs))
		}
		rows = append(rows, Row{
			Label:   c.label,
			Columns: []string{"heap_ns", "tiered_ns", "matches"},
			Values: map[string]float64{
				"heap_ns": heapNs, "tiered_ns": tierNs, "matches": float64(len(heapMs)),
			},
		})
	}

	// Restart: close the tiered pipeline and recover from segments + WAL
	// alone, verifying counts against the all-heap twin.
	liveRecords := tiered.Store().RecordCount()
	if err := tiered.Close(); err != nil {
		return nil, err
	}
	start := time.Now()
	re, err := semitri.New(sources, tcfg)
	if err != nil {
		return nil, err
	}
	recoverMs := float64(time.Since(start).Microseconds()) / 1000
	rs := re.Recovery()
	hs := heap.Store()
	if re.Store().RecordCount() != hs.RecordCount() || re.Store().RecordCount() != liveRecords ||
		re.Store().StructuredCount() != hs.StructuredCount() {
		err := fmt.Errorf("storage: recovered %d records / %d structured, want %d / %d",
			re.Store().RecordCount(), re.Store().StructuredCount(), hs.RecordCount(), hs.StructuredCount())
		re.Close()
		return nil, err
	}
	if err := re.Close(); err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:    "storage",
		Title: "storage: tiered engine — incremental checkpoints, cold reads, recovery",
		Notes: []string{
			"asserted: steady-state freeze bytes stay flat while the store grows (cost tracks the tail, not the total), and every tiered answer equals the all-heap answer",
			"the time-window scan covers only the newest segment's span, so footer pruning skips the rest; the full scan decodes every segment",
			fmt.Sprintf("store at recovery: %d records across %d cold segments", liveRecords, rs.ColdSegments),
		},
	}
	tbl.Rows = append(tbl.Rows,
		Row{
			Label:   "checkpoint: initial full freeze",
			Columns: []string{"ms", "mb"},
			Values:  map[string]float64{"ms": baseMs, "mb": float64(baseBytes) / (1 << 20)},
		},
		Row{
			Label:   "checkpoint: steady state (const tail, growing store)",
			Columns: []string{"min_ms", "max_ms", "min_kb", "max_kb"},
			Values: map[string]float64{
				"min_ms": minMs, "max_ms": maxMs,
				"min_kb": minB / 1024, "max_kb": maxB / 1024,
			},
		},
	)
	tbl.Rows = append(tbl.Rows, rows...)
	tbl.Rows = append(tbl.Rows,
		Row{
			Label:   "recovery-time: restart from segments + wal",
			Columns: []string{"ms", "cold_segments", "wal_frames"},
			Values: map[string]float64{
				"ms":            recoverMs,
				"cold_segments": float64(rs.ColdSegments),
				"wal_frames":    float64(rs.FramesApplied),
			},
		},
		Row{
			Label:   "peak-RSS: process high-water mark",
			Columns: []string{"mb"},
			Values:  map[string]float64{"mb": peakRSSBytes() / (1 << 20)},
		},
	)
	return tbl, nil
}
