package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/line"
	"semitri/internal/point"
	"semitri/internal/roadnet"
	"semitri/internal/workload"
)

// Fig10 reproduces Fig. 10: the sensitivity of map-matching accuracy to the
// global view radius R (1..5) and kernel width σ (0.5R, 1R, 1.5R, 2R) on the
// benchmark drive. The paper observes high accuracy with small R (=2) and
// σ = 0.5R; the synthetic drive with consumer-grade noise reproduces the
// flat-then-degrading shape.
func Fig10(env *Env) (*Table, error) {
	// The sensitivity analysis runs on a dedicated dense downtown network
	// (short blocks, frequent turns) like the benchmark area of the paper:
	// that is the regime in which an over-wide context window starts mixing
	// evidence across turns and parallel streets, so accuracy peaks at small
	// R instead of growing monotonically.
	netCfg := roadnet.GeneratorConfig{
		Extent:           geo.NewRect(geo.Pt(0, 0), geo.Pt(4000, 4000)),
		BlockSize:        250,
		Seed:             env.Seed + 19,
		WithMetro:        false,
		WithHighway:      false,
		FootpathFraction: 0.1,
	}
	denseNet, err := roadnet.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	denseCity := &workload.City{Extent: netCfg.Extent, Landuse: env.City.Landuse, Roads: denseNet, POIs: env.City.POIs}
	driveCfg := workload.DefaultDriveConfig(env.Seed + 20)
	driveCfg.Legs = env.scaleInt(12)
	driveCfg.Sampling = 3 * time.Second
	driveCfg.NoiseStd = 12
	ds, err := workload.GenerateDrive(denseCity, driveCfg)
	if err != nil {
		return nil, err
	}
	obj := ds.Objects[0]
	recs := ds.PerObject[obj]
	truth := ds.Truth[obj].SegmentIDs
	points := make([]geo.Point, len(recs))
	for i, r := range recs {
		points[i] = r.Position
	}
	t := &Table{
		ID:    "fig10",
		Title: "Map-matching accuracy vs global view radius R and kernel width sigma",
		Notes: []string{
			"paper: accuracy 90-96% on the Seattle benchmark, best with small R (=2) and sigma = 0.5R",
		},
	}
	sigmas := []float64{0.5, 1.0, 1.5, 2.0}
	cols := make([]string, len(sigmas))
	for i, s := range sigmas {
		cols[i] = fmt.Sprintf("sigma_%.1fR", s)
	}
	for r := 1; r <= 5; r++ {
		row := Row{Label: fmt.Sprintf("R=%d", r), Columns: cols, Values: map[string]float64{}}
		for i, s := range sigmas {
			cfg := line.Config{CandidateRadius: 60, GlobalRadius: r, SigmaFactor: s}
			annotator, err := line.NewAnnotator(denseNet, cfg)
			if err != nil {
				return nil, err
			}
			matched := annotator.MatchPoints(points)
			row.Values[cols[i]] = line.Accuracy(matched, truth)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationMapMatching compares the global map-matching algorithm against the
// per-point nearest-segment baseline across increasing GPS noise levels
// (design-choice ablation A1 in DESIGN.md).
func AblationMapMatching(env *Env) (*Table, error) {
	t := &Table{
		ID:    "ablation-mapmatch",
		Title: "Global map matching vs nearest-segment baseline under increasing GPS noise",
		Notes: []string{
			"expected: the global algorithm degrades more slowly than the per-point baseline as noise grows (the motivation of §4.2)",
		},
	}
	cols := []string{"global", "nearest", "delta"}
	for i, noise := range []float64{4, 8, 15, 25, 40} {
		driveCfg := workload.DefaultDriveConfig(env.Seed + 30 + int64(i))
		driveCfg.Legs = env.scaleInt(6)
		driveCfg.NoiseStd = noise
		ds, err := workload.GenerateDrive(env.City, driveCfg)
		if err != nil {
			return nil, err
		}
		obj := ds.Objects[0]
		recs := ds.PerObject[obj]
		truth := ds.Truth[obj].SegmentIDs
		points := make([]geo.Point, len(recs))
		for j, r := range recs {
			points[j] = r.Position
		}
		annotator, err := line.NewAnnotator(env.City.Roads, line.DefaultConfig())
		if err != nil {
			return nil, err
		}
		global := line.Accuracy(annotator.MatchPoints(points), truth)
		nearest := line.Accuracy(annotator.MatchPointsNearest(points), truth)
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("noise %2.0f m", noise), Columns: cols,
			Values: map[string]float64{"global": global, "nearest": nearest, "delta": global - nearest},
		})
	}
	return t, nil
}

// AblationHMM compares the HMM stop-category inference against the
// nearest-POI baseline (ablation A2). Stops are planned at known POIs; the
// observed stop centre is perturbed with increasing location error (GPS
// noise, indoor signal loss, centroid drift — the data-quality regime §4.3
// targets). With exact locations the one-to-one nearest match is trivially
// right; as the location error approaches the POI spacing of the dense core
// it collapses, while the category-level HMM inference degrades much more
// slowly because it aggregates the influence of every nearby POI.
func AblationHMM(env *Env) (*Table, error) {
	t := &Table{
		ID:    "ablation-hmm",
		Title: "HMM stop-category inference vs nearest-POI baseline under stop-location error",
		Notes: []string{
			"expected: nearest-POI is exact at zero error and collapses as the error approaches the POI spacing; the HMM's category-level accuracy degrades more slowly",
		},
	}
	cols := []string{"hmm", "nearest", "delta"}
	carCfg := workload.DefaultPrivateCarConfig(env.Seed + 50)
	carCfg.NumVehicles = env.scaleInt(60)
	ds, err := workload.GenerateVehicles(env.City, carCfg)
	if err != nil {
		return nil, err
	}
	annotator, err := point.NewAnnotator(env.City.POIs, point.DefaultConfig())
	if err != nil {
		return nil, err
	}
	for _, noise := range []float64{0, 20, 50, 100, 200} {
		rng := rand.New(rand.NewSource(env.Seed + int64(noise)))
		var hmmCorrect, nearestCorrect, total int
		for _, obj := range ds.Objects {
			truth := ds.Truth[obj]
			if len(truth.StopCategories) == 0 {
				continue
			}
			stops := make([]*episode.Episode, len(truth.StopCenters))
			for k, c := range truth.StopCenters {
				observed := geo.Pt(c.X+rng.NormFloat64()*noise, c.Y+rng.NormFloat64()*noise)
				stops[k] = &episode.Episode{
					TrajectoryID: obj, ObjectID: obj, Kind: episode.Stop,
					Center: observed, Bounds: geo.RectAround(observed, 40), RecordCount: 10,
				}
			}
			_, anns, err := annotator.AnnotateStops(stops)
			if err != nil {
				return nil, err
			}
			base, err := annotator.AnnotateStopsNearest(stops)
			if err != nil {
				return nil, err
			}
			for k, want := range truth.StopCategories {
				total++
				if anns[k].Category == want {
					hmmCorrect++
				}
				if base[k].Category == want {
					nearestCorrect++
				}
			}
		}
		if total == 0 {
			continue
		}
		hmmAcc := float64(hmmCorrect) / float64(total)
		nearestAcc := float64(nearestCorrect) / float64(total)
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("location error %3.0f m (%d stops)", noise, total), Columns: cols,
			Values: map[string]float64{"hmm": hmmAcc, "nearest": nearestAcc, "delta": hmmAcc - nearestAcc},
		})
	}
	return t, nil
}
