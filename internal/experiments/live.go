package experiments

import (
	"fmt"
	"runtime"
	"time"

	"semitri"
	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/geo"
	"semitri/internal/obs"
	"semitri/internal/query"
	"semitri/internal/store"
	"semitri/internal/workload"
)

// liveStandingQueries is the subscription fan-out the bench sustains: every
// store event is evaluated against this many standing predicates while
// ingestion runs at full rate. The BENCH artifact asserts the count stays at
// four figures — the pipeline's design point.
const liveStandingQueries = 1024

// liveStandingQuerySet builds a deterministic mix of standing queries over
// the synthetic city: category and mode filters, spatial windows, time
// windows and combinations — the shapes /subscribe serves.
func liveStandingQuerySet(seed int64, n int) []query.Query {
	categories := []string{"services", "feedings", "item sale", "person life", "unknown"}
	modes := []string{"walk", "bicycle", "bus", "metro", "car"}
	stop, move := episode.Stop, episode.Move
	lcg := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func(mod int) int {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int(lcg >> 33 % uint64(mod))
	}
	day := time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC)
	qs := make([]query.Query, 0, n)
	for i := 0; i < n; i++ {
		var q query.Query
		switch i % 4 {
		case 0: // stops by category
			q = query.Query{Kind: &stop, AnnKey: core.AnnPOICategory, AnnValue: categories[next(len(categories))]}
		case 1: // moves by mode
			q = query.Query{Kind: &move, AnnKey: core.AnnTransportMode, AnnValue: modes[next(len(modes))]}
		case 2: // geofence over the 10 km city
			x, y := float64(next(9000)), float64(next(9000))
			side := float64(500 + next(2500))
			r := geo.NewRect(geo.Pt(x, y), geo.Pt(x+side, y+side))
			q = query.Query{Window: &r}
		default: // category inside a time-of-day band
			from := day.Add(time.Duration(next(20)) * time.Hour)
			q = query.Query{
				AnnKey: core.AnnPOICategory, AnnValue: categories[next(len(categories))],
				From: from, To: from.Add(time.Duration(2+next(6)) * time.Hour),
			}
		}
		qs = append(qs, q)
	}
	return qs
}

// Live measures the standing-query pipeline under full-rate ingestion: the
// same people workload streams through the serial Add loop with the live tap
// detached (baseline) and attached with liveStandingQueries standing
// subscriptions being dispatched — each with a draining consumer, the
// /subscribe shape. The instrumented row's overhead_pct is CI-asserted
// below 5%: evaluation rides a bounded ring and a dispatcher goroutine, so
// the foreground cost of subscriptions is one ring publish per event batch,
// no matter how many queries stand.
//
// The measurement reuses the obs experiment's chunk-interleaved
// complementary random passes (see Observability): the tap is attached and
// detached per ~ms chunk, orientations drawn at random per pass couple and
// then complemented, and per-chunk minima are summed per configuration.
// One extra wrinkle: evaluation is asynchronous, so after every tapped chunk
// the pass waits (untimed) for the dispatcher to drain before timing a
// detached chunk — otherwise backlog evaluation would bleed CPU into
// baseline chunks and flatter the overhead.
func Live(env *Env) (*Table, error) {
	days := env.scaleInt(3)
	if days < 3 {
		days = 3
	}
	cfg := workload.DefaultPeopleConfig(8, days, env.Seed+89)
	ds, err := workload.GeneratePeople(env.City, cfg)
	if err != nil {
		return nil, err
	}
	records := ds.Records()
	if len(records) == 0 {
		return nil, fmt.Errorf("live: empty workload")
	}
	const chunks = 64
	chunkLen := (len(records) + chunks - 1) / chunks
	nChunks := (len(records) + chunkLen - 1) / chunkLen

	const passes = 12 // even: complementary couples keep exposure balanced
	offNsSamples := make([][]int64, nChunks)
	onNsSamples := make([][]int64, nChunks)
	queries := liveStandingQuerySet(env.Seed+13, liveStandingQueries)

	// Dispatch totals accumulate across timed passes only.
	var published, evalDrops, notifications, deliveryDrops, delivered int64

	// pass streams the whole workload through a fresh pipeline with a fresh
	// dispatcher + standing set, toggling the live tap per chunk.
	pass := func(instr func(c int) bool, timed bool) error {
		runtime.GC()
		p, err := semitri.New(semitri.Sources{
			Landuse: env.City.Landuse, Roads: env.City.Roads, POIs: env.City.POIs,
		}, semitri.DefaultConfig())
		if err != nil {
			return err
		}
		defer p.Close()
		st := p.Store()
		engine := p.QueryEngine()
		live := query.NewLive(st, 1<<16)
		defer live.Close()
		tapped := store.Tee(engine, live.Tap())

		standing := make([]*query.Standing, 0, len(queries))
		for _, q := range queries {
			s, err := live.Register(q, 256)
			if err != nil {
				return fmt.Errorf("live: register %+v: %w", q, err)
			}
			standing = append(standing, s)
			// Each subscription gets a draining consumer (the /subscribe
			// shape): without one, delivery rings just fill and the drop
			// numbers measure nothing.
			go func(s *query.Standing) {
				sub := s.Sub()
				var buf []query.Notification
				for {
					buf = sub.Drain(buf[:0])
					select {
					case <-sub.C():
					case <-sub.Done():
						return
					}
				}
			}(s)
		}

		sp := p.NewStream()
		wasTapped := false
		for c := 0; c < nChunks; c++ {
			lo, hi := c*chunkLen, (c+1)*chunkLen
			if hi > len(records) {
				hi = len(records)
			}
			tap := instr(c)
			if wasTapped && !tap {
				live.Sync() // drain backlog before timing a baseline chunk
			}
			if tap {
				st.AttachIndex(tapped)
			} else {
				st.AttachIndex(engine)
			}
			wasTapped = tap
			start := time.Now()
			for _, r := range records[lo:hi] {
				if _, err := sp.Add(r); err != nil {
					return err
				}
			}
			if timed {
				elapsed := time.Since(start).Nanoseconds()
				if tap {
					onNsSamples[c] = append(onNsSamples[c], elapsed)
				} else {
					offNsSamples[c] = append(offNsSamples[c], elapsed)
				}
			}
		}
		st.AttachIndex(tapped)
		if _, err := sp.Close(); err != nil {
			return err
		}
		live.Sync()
		if timed {
			bs := live.BusStats()
			published += bs.Published
			evalDrops += live.EvalDrops()
			for _, s := range standing {
				notifications += s.Sub().Received()
				deliveryDrops += s.Drops()
				delivered += s.Sub().Received() - s.Drops()
			}
		}
		return nil
	}

	if err := pass(func(c int) bool { return c%2 == 0 }, false); err != nil { // warm-up
		return nil, err
	}
	before := obs.Default().Numeric()
	lcg := uint64(env.Seed)*6364136223846793005 + 1442695040888963407
	orient := make([]bool, (nChunks+1)/2)
	for p := 0; p < passes; p += 2 {
		for i := range orient {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			orient[i] = lcg>>63 == 1
		}
		instr := func(c int) bool { return orient[c/2] == (c%2 == 0) }
		if err := pass(instr, true); err != nil {
			return nil, err
		}
		if err := pass(func(c int) bool { return !instr(c) }, true); err != nil {
			return nil, err
		}
	}
	after := obs.Default().Numeric()

	min := func(xs []int64) float64 {
		best := xs[0]
		for _, x := range xs[1:] {
			if x < best {
				best = x
			}
		}
		return float64(best)
	}
	var offNs, onNs float64
	for c := 0; c < nChunks; c++ {
		if len(offNsSamples[c]) == 0 || len(onNsSamples[c]) == 0 {
			return nil, fmt.Errorf("live: chunk %d missing samples for a configuration", c)
		}
		offNs += min(offNsSamples[c])
		onNs += min(onNsSamples[c])
	}
	offPerRec := offNs / float64(len(records))
	onPerRec := onNs / float64(len(records))
	overheadPct := (onPerRec - offPerRec) / offPerRec * 100

	// Sustained evaluation throughput from the dispatch instrumentation:
	// events evaluated per second of dispatcher busy time, each event checked
	// against every standing query.
	events := after["semitri_live_events_evaluated_total"] - before["semitri_live_events_evaluated_total"]
	busyNs := after["semitri_live_dispatch_ns_sum"] - before["semitri_live_dispatch_ns_sum"]
	matches := after["semitri_live_matches_total"] - before["semitri_live_matches_total"]
	eventsPerSec := 0.0
	if busyNs > 0 {
		eventsPerSec = events / (busyNs / 1e9)
	}
	evalDropRate := 0.0
	if published > 0 {
		evalDropRate = float64(evalDrops) / float64(published) * 100
	}
	deliveryDropRate := 0.0
	if notifications > 0 {
		deliveryDropRate = float64(deliveryDrops) / float64(notifications) * 100
	}

	return &Table{
		ID:    "live",
		Title: "live subscriptions: ingest cost and dispatch throughput with 1k standing queries",
		Rows: []Row{
			{
				Label:   "baseline (live tap detached)",
				Columns: []string{"ns_per_record", "records"},
				Values: map[string]float64{
					"ns_per_record": offPerRec,
					"records":       float64(len(records)),
				},
			},
			{
				Label:   "live (standing queries attached)",
				Columns: []string{"ns_per_record", "overhead_pct", "standing_queries"},
				Values: map[string]float64{
					"ns_per_record":    onPerRec,
					"overhead_pct":     overheadPct,
					"standing_queries": float64(liveStandingQueries),
				},
			},
			{
				Label:   "dispatch",
				Columns: []string{"events_per_sec", "events", "matches", "eval_drop_rate_pct", "delivered", "delivery_drop_rate_pct"},
				Values: map[string]float64{
					"events_per_sec":         eventsPerSec,
					"events":                 events,
					"matches":                matches,
					"eval_drop_rate_pct":     evalDropRate,
					"delivered":              float64(delivered),
					"delivery_drop_rate_pct": deliveryDropRate,
				},
			},
		},
		Notes: []string{
			"chunk-interleaved complementary random passes (see obs); overhead_pct is CI-asserted < 5 with standing_queries >= 1000",
			"events_per_sec is dispatcher busy-time throughput: every event evaluated against all standing queries",
		},
	}, nil
}
