package experiments

import (
	"fmt"
	"runtime"
	"time"

	"semitri"
	"semitri/internal/obs"
	"semitri/internal/workload"
)

// Observability measures what the metrics layer costs on the ingest hot
// path: the same people workload is streamed through the serial Add loop
// with instrumentation on (the production default — counters, sampled stage
// histograms, contended-lock timing all live) and with the package-wide obs
// gate off, reporting ns/record for both and the relative overhead. The
// overhead_pct row is CI-asserted below 3%: the observability layer must not
// take back the allocation-lean hot path earlier PRs built.
//
// The true overhead is a few tens of nanoseconds on a ~2µs record, so the
// measurement has to beat machine drift (frequency scaling, co-tenant load)
// that moves whole-pass timings by several percent. Interleaving at the pass
// level is not enough: drift operates on the ~100ms scale of a pass. Instead
// each pass toggles the gate every chunk of records (~milliseconds, below
// the drift scale), with each adjacent chunk pair's orientation drawn at
// random per pass (deterministically, so runs reproduce) and every pass
// followed by its exact complement, so neither configuration can correlate
// with pass order, chunk parity or any periodic disturbance. Every chunk is
// thus timed the same number of times under each configuration on identical
// records, cancelling per-chunk content differences (episode closes cluster
// at specific records). Timing noise here is one-sided — steal time, GC
// pauses and preemptions only ever inflate a sample — so per chunk the
// minimum across that configuration's samples estimates the clean ingest
// time (empirically reproducible to ~0.1% once one undisturbed window
// lands), and the per-chunk minima are summed per configuration, averaging
// the residual convergence error of the chunks that never caught a clean
// window across the many that did.
func Observability(env *Env) (*Table, error) {
	// A floor of three days keeps the chunks long enough (a few ms even at
	// CI scale) that per-chunk timer jitter stays well below the 3% budget.
	days := env.scaleInt(3)
	if days < 3 {
		days = 3
	}
	cfg := workload.DefaultPeopleConfig(8, days, env.Seed+67)
	ds, err := workload.GeneratePeople(env.City, cfg)
	if err != nil {
		return nil, err
	}
	records := ds.Records()
	if len(records) == 0 {
		return nil, fmt.Errorf("obs: empty workload")
	}
	const chunks = 64
	chunkLen := (len(records) + chunks - 1) / chunks
	nChunks := (len(records) + chunkLen - 1) / chunkLen

	const passes = 32 // even: half the passes per phase keeps exposure balanced
	// offNsSamples/onNsSamples collect, per chunk, every timed ingest of that
	// chunk under the respective configuration.
	offNsSamples := make([][]int64, nChunks)
	onNsSamples := make([][]int64, nChunks)

	defer obs.SetEnabled(true)
	// pass streams the whole workload through a fresh pipeline, toggling the
	// obs gate per chunk (instr decides each chunk's configuration) and
	// recording per-chunk wall time. timed=false is the untimed warm-up.
	pass := func(instr func(c int) bool, timed bool) error {
		runtime.GC()
		p, err := semitri.New(semitri.Sources{
			Landuse: env.City.Landuse, Roads: env.City.Roads, POIs: env.City.POIs,
		}, semitri.DefaultConfig())
		if err != nil {
			return err
		}
		defer p.Close()
		sp := p.NewStream()
		for c := 0; c < nChunks; c++ {
			lo, hi := c*chunkLen, (c+1)*chunkLen
			if hi > len(records) {
				hi = len(records)
			}
			instrumented := instr(c)
			obs.SetEnabled(instrumented)
			start := time.Now()
			for _, r := range records[lo:hi] {
				if _, err := sp.Add(r); err != nil {
					return err
				}
			}
			if timed {
				elapsed := time.Since(start).Nanoseconds()
				if instrumented {
					onNsSamples[c] = append(onNsSamples[c], elapsed)
				} else {
					offNsSamples[c] = append(offNsSamples[c], elapsed)
				}
			}
		}
		obs.SetEnabled(true)
		_, err = sp.Close()
		return err
	}

	if err := pass(func(c int) bool { return c%2 == 0 }, false); err != nil { // warm-up
		return nil, err
	}
	// Passes run in complementary couples: chunks are grouped in adjacent
	// pairs, a deterministic LCG draws a fresh random orientation (which pair
	// member is instrumented) for the first pass of each couple, and the
	// second pass flips every orientation. Randomizing per pair stops any
	// periodic disturbance — hypervisor steal, frequency dithering — from
	// phase-locking to a strict on/off alternation, while the complement
	// keeps every chunk timed exactly passes/2 times per configuration.
	lcg := uint64(env.Seed)*6364136223846793005 + 1442695040888963407
	orient := make([]bool, (nChunks+1)/2)
	for p := 0; p < passes; p += 2 {
		for i := range orient {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			orient[i] = lcg>>63 == 1
		}
		instr := func(c int) bool { return orient[c/2] == (c%2 == 0) }
		if err := pass(instr, true); err != nil {
			return nil, err
		}
		if err := pass(func(c int) bool { return !instr(c) }, true); err != nil {
			return nil, err
		}
	}

	min := func(xs []int64) float64 {
		best := xs[0]
		for _, x := range xs[1:] {
			if x < best {
				best = x
			}
		}
		return float64(best)
	}
	var offNs, onNs float64
	for c := 0; c < nChunks; c++ {
		if len(offNsSamples[c]) == 0 || len(onNsSamples[c]) == 0 {
			return nil, fmt.Errorf("obs: chunk %d missing samples for a configuration", c)
		}
		offNs += min(offNsSamples[c])
		onNs += min(onNsSamples[c])
	}
	offPerRec := offNs / float64(len(records))
	onPerRec := onNs / float64(len(records))
	overheadPct := (onPerRec - offPerRec) / offPerRec * 100

	return &Table{
		ID:    "obs",
		Title: "observability: ingest cost with metrics on vs off (ns/record)",
		Rows: []Row{
			{
				Label:   "uninstrumented (obs gate off)",
				Columns: []string{"ns_per_record", "records"},
				Values: map[string]float64{
					"ns_per_record": offPerRec,
					"records":       float64(len(records)),
				},
			},
			{
				Label:   "instrumented (production default)",
				Columns: []string{"ns_per_record", "overhead_pct"},
				Values: map[string]float64{
					"ns_per_record": onPerRec,
					"overhead_pct":  overheadPct,
				},
			},
		},
		Notes: []string{
			"chunk-interleaved complementary random passes, summed per-chunk minima; overhead_pct is CI-asserted < 3",
		},
	}, nil
}
