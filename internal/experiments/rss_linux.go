//go:build linux

package experiments

import "syscall"

// peakRSSBytes reports the process's peak resident set size. On Linux,
// ru_maxrss is in KiB.
func peakRSSBytes() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Maxrss) * 1024
}
