// Package experiments contains the harness that regenerates every table and
// figure of the paper's evaluation (§5) on the synthetic stand-in datasets:
// Table 1/2 (dataset inventories), Fig. 9/14 (land-use distributions),
// Fig. 10 (map-matching sensitivity), Fig. 11 (stop/trajectory categories),
// Fig. 12/13 (episode statistics), Fig. 15/16 (transport-mode annotation of
// commutes), Fig. 17 (latency breakdown), the §5.2 storage-compression claim
// and two ablations (global vs nearest map matching, HMM vs nearest-POI stop
// annotation).
//
// Every experiment takes an Env (a seeded synthetic city plus a scale
// factor) so the harness is deterministic and its cost can be tuned; the
// rows it returns are printed by cmd/semitri-bench and exercised by the
// package-level benchmarks in the repository root.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"semitri"
	"semitri/internal/workload"
)

// Env is the shared environment of an experiment run.
type Env struct {
	// Seed drives every generator used by the experiments.
	Seed int64
	// Scale multiplies the default workload sizes (1.0 reproduces the scaled
	// defaults documented in EXPERIMENTS.md; smaller values run faster).
	Scale float64
	// City is the synthetic environment shared by all experiments.
	City *workload.City
}

// NewEnv builds the default experiment environment: a 10 km x 10 km city
// with a Milan-like POI set of about 8,000 POIs.
func NewEnv(seed int64, scale float64) (*Env, error) {
	if scale <= 0 {
		scale = 1
	}
	poiCount := int(8000 * scale)
	if poiCount < 500 {
		poiCount = 500
	}
	city, err := workload.NewCity(workload.DefaultCityConfig(seed, poiCount))
	if err != nil {
		return nil, err
	}
	return &Env{Seed: seed, Scale: scale, City: city}, nil
}

func (e *Env) scaleInt(base int) int {
	v := int(float64(base) * e.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Row is one printable output row of an experiment: a label plus named
// numeric columns (printed in the order of Columns). The JSON form is what
// cmd/semitri-bench -json emits for CI artifacts.
type Row struct {
	Label   string             `json:"label"`
	Columns []string           `json:"columns"`
	Values  map[string]float64 `json:"values"`
}

// Table is a printable experiment result.
type Table struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Rows  []Row  `json:"rows"`
	// Notes records the paper-reported reference values or qualitative
	// expectations that EXPERIMENTS.md compares against.
	Notes []string `json:"notes,omitempty"`
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-34s", r.Label)
		for _, c := range r.Columns {
			fmt.Fprintf(&b, " %s=%.4g", c, r.Values[c])
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// sortedKeys returns map keys sorted by descending value then name, used to
// emit distribution rows in a stable, readable order.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// runPipeline processes a dataset through a fresh pipeline with the given
// configuration and returns the pipeline together with its result.
func runPipeline(env *Env, ds *workload.Dataset, cfg semitri.Config) (*semitri.Pipeline, *semitri.Result, error) {
	p, err := semitri.New(semitri.Sources{
		Landuse: env.City.Landuse,
		Roads:   env.City.Roads,
		POIs:    env.City.POIs,
	}, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := p.ProcessRecords(ds.Records())
	if err != nil {
		return nil, nil, err
	}
	return p, res, nil
}

// Registry maps experiment ids (as accepted by cmd/semitri-bench -exp) to
// the functions that regenerate them.
var Registry = map[string]func(*Env) (*Table, error){
	"table1":            Table1,
	"table2":            Table2,
	"fig9":              Fig9,
	"fig10":             Fig10,
	"fig11":             Fig11,
	"fig12":             Fig12,
	"fig13":             Fig13,
	"fig14":             Fig14,
	"fig15":             Fig15,
	"fig17":             Fig17,
	"compression":       Compression,
	"ablation-mapmatch": AblationMapMatching,
	"ablation-hmm":      AblationHMM,
	"stream":            Stream,
	"lookup":            Lookup,
	"query":             QueryServing,
	"relational":        Relational,
	"durability":        DurabilityOverhead,
	"parallel":          Parallel,
	"storage":           StorageEngine,
	"obs":               Observability,
	"live":              Live,
}

// Order lists the experiment ids in presentation order (the order of §5).
var Order = []string{
	"table1", "table2", "fig9", "fig10", "fig11", "fig12", "fig13",
	"fig14", "fig15", "fig17", "compression", "ablation-mapmatch", "ablation-hmm",
	"stream", "lookup", "query", "relational", "durability", "parallel",
	"storage", "obs", "live",
}
