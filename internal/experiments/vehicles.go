package experiments

import (
	"fmt"
	"time"

	"semitri"
	"semitri/internal/analytics"
	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/workload"
)

// Table1 reproduces Table 1 of the paper: the inventory of the vehicle
// datasets (objects, GPS records, sampling) together with the sizes of the
// 3rd-party sources. The synthetic datasets are scaled-down stand-ins; the
// row shapes (taxis: few objects, high-rate; Milan cars: many objects,
// sparse sampling; one benchmark drive) match the originals.
func Table1(env *Env) (*Table, error) {
	taxiCfg := workload.DefaultTaxiConfig(env.Seed)
	taxiCfg.NumVehicles = env.scaleInt(2)
	taxiCfg.TripsPerVehicle = env.scaleInt(12)
	taxis, err := workload.GenerateVehicles(env.City, taxiCfg)
	if err != nil {
		return nil, err
	}
	carCfg := workload.DefaultPrivateCarConfig(env.Seed + 1)
	carCfg.NumVehicles = env.scaleInt(60)
	cars, err := workload.GenerateVehicles(env.City, carCfg)
	if err != nil {
		return nil, err
	}
	drive, err := workload.GenerateDrive(env.City, workload.DefaultDriveConfig(env.Seed+2))
	if err != nil {
		return nil, err
	}
	cols := []string{"objects", "gps_records", "sampling_s"}
	t := &Table{
		ID:    "table1",
		Title: "Vehicle datasets (synthetic stand-ins for Lausanne taxis, Milan cars, Seattle drive)",
		Notes: []string{
			"paper: taxis 2 objects / 3,064,248 records / 1 s; Milan 17,241 objects / 2,075,213 records / ~40 s; Seattle 1 object / 7,531 records",
			"sources: landuse cells " + fmt.Sprint(env.City.Landuse.NumCells()) +
				", POIs " + fmt.Sprint(env.City.POIs.Len()) +
				", road segments " + fmt.Sprint(env.City.Roads.NumSegments()),
		},
	}
	t.Rows = append(t.Rows, Row{
		Label: "lausanne-taxis (synthetic)", Columns: cols,
		Values: map[string]float64{
			"objects": float64(len(taxis.Objects)), "gps_records": float64(taxis.RecordCount()),
			"sampling_s": taxiCfg.Sampling.Seconds()},
	})
	t.Rows = append(t.Rows, Row{
		Label: "milan-private-cars (synthetic)", Columns: cols,
		Values: map[string]float64{
			"objects": float64(len(cars.Objects)), "gps_records": float64(cars.RecordCount()),
			"sampling_s": carCfg.Sampling.Seconds()},
	})
	t.Rows = append(t.Rows, Row{
		Label: "benchmark-drive (synthetic)", Columns: cols,
		Values: map[string]float64{
			"objects": 1, "gps_records": float64(drive.RecordCount()),
			"sampling_s": workload.DefaultDriveConfig(env.Seed + 2).Sampling.Seconds()},
	})
	return t, nil
}

// Fig9 reproduces Fig. 9: the land-use category distribution of the taxi
// dataset, reported separately for whole trajectories, move episodes and
// stop episodes. The paper's headline observation — building (1.2) and
// transportation (1.3) areas dominating with a combined share around 80% —
// is preserved because taxis drive on the urban street grid.
func Fig9(env *Env) (*Table, error) {
	cfg := workload.DefaultTaxiConfig(env.Seed)
	cfg.NumVehicles = env.scaleInt(2)
	cfg.TripsPerVehicle = env.scaleInt(10)
	taxis, err := workload.GenerateVehicles(env.City, cfg)
	if err != nil {
		return nil, err
	}
	pipelineCfg := semitri.VehicleConfig()
	pipelineCfg.DailySplit = false
	p, _, err := runPipeline(env, taxis, pipelineCfg)
	if err != nil {
		return nil, err
	}
	st := p.Store()
	whole := analytics.LanduseDistribution(st, nil, nil)
	moveKind := episode.Move
	stopKind := episode.Stop
	moves := analytics.LanduseDistribution(st, nil, &moveKind)
	stops := analytics.LanduseDistribution(st, nil, &stopKind)
	t := &Table{
		ID:    "fig9",
		Title: "Land-use category distribution over taxi trajectories / moves / stops",
		Notes: []string{
			"paper: building areas (1.2) 46.6% and transportation areas (1.3) 36.1% of taxi GPS records; ~83% combined",
			"paper: moves cover 79.25% of the taxi land-use weight, stops 20.75%",
		},
	}
	cols := []string{"trajectory", "move", "stop"}
	for _, cat := range sortedKeys(whole.Shares()) {
		t.Rows = append(t.Rows, Row{
			Label: cat, Columns: cols,
			Values: map[string]float64{
				"trajectory": whole.Share(cat),
				"move":       moves.Share(cat),
				"stop":       stops.Share(cat),
			},
		})
	}
	moveWeight := moves.Total() / (moves.Total() + stops.Total())
	t.Rows = append(t.Rows, Row{
		Label: "episode weight split", Columns: []string{"move_share", "stop_share"},
		Values: map[string]float64{"move_share": moveWeight, "stop_share": 1 - moveWeight},
	})
	return t, nil
}

// Fig11 reproduces Fig. 11: the POI category distribution of the source, the
// distribution of inferred stop categories and the distribution of
// trajectory categories (Eq. 8) for the Milan-like private-car dataset.
func Fig11(env *Env) (*Table, error) {
	cfg := workload.DefaultPrivateCarConfig(env.Seed + 3)
	cfg.NumVehicles = env.scaleInt(60)
	cars, err := workload.GenerateVehicles(env.City, cfg)
	if err != nil {
		return nil, err
	}
	pipelineCfg := semitri.VehicleConfig()
	pipelineCfg.DailySplit = false
	p, _, err := runPipeline(env, cars, pipelineCfg)
	if err != nil {
		return nil, err
	}
	st := p.Store()
	poiShares := env.City.POIs.CategoryShares()
	stopDist := analytics.StopCountDistribution(st, semitri.InterpretationMerged, core.AnnPOICategory)
	trajDist := analytics.TrajectoryCategoryDistribution(st, semitri.InterpretationMerged, core.AnnPOICategory)
	t := &Table{
		ID:    "fig11",
		Title: "POI / stop / trajectory category distributions (Milan-like private cars)",
		Notes: []string{
			"paper: POIs 10.9% services, 17.7% feedings, 31.5% item sale, 38.6% person life, 1.3% unknown",
			"paper: ~56.3% of stops item sale, ~24.2% person life; trajectory distribution statistically similar to the stop distribution",
		},
	}
	cols := []string{"poi", "stop", "trajectory"}
	names := []string{"services", "feedings", "item sale", "person life", "unknown"}
	for i, name := range names {
		t.Rows = append(t.Rows, Row{
			Label: name, Columns: cols,
			Values: map[string]float64{
				"poi":        poiShares[i],
				"stop":       stopDist.Share(name),
				"trajectory": trajDist.Share(name),
			},
		})
	}
	return t, nil
}

// Compression reproduces the §5.2 storage-compression claim: the region
// level representation of the taxi data uses a tiny fraction of the storage
// units of the raw GPS records (the paper reports ≈99.7%).
func Compression(env *Env) (*Table, error) {
	cfg := workload.DefaultTaxiConfig(env.Seed + 4)
	cfg.NumVehicles = env.scaleInt(2)
	cfg.TripsPerVehicle = env.scaleInt(10)
	if cfg.TripsPerVehicle < 6 {
		// The compression ratio depends on cells being revisited across
		// trips; keep enough trips even at small experiment scales.
		cfg.TripsPerVehicle = 6
	}
	cfg.Sampling = time.Second // the Lausanne taxis sample at 1 Hz
	taxis, err := workload.GenerateVehicles(env.City, cfg)
	if err != nil {
		return nil, err
	}
	pipelineCfg := semitri.VehicleConfig()
	pipelineCfg.DailySplit = false
	p, _, err := runPipeline(env, taxis, pipelineCfg)
	if err != nil {
		return nil, err
	}
	c := analytics.Compression(p.Store())
	t := &Table{
		ID:    "compression",
		Title: "Storage compression of the region-level representation (§5.2)",
		Notes: []string{
			"paper: ~99.7% compression (3M GPS records over 5 months represented by 8,385 annotated cells)",
			"reproduction note: the ratio grows with tracking duration as cells are revisited; the scaled dataset covers hours, not months",
		},
	}
	t.Rows = append(t.Rows, Row{
		Label:   "taxi dataset",
		Columns: []string{"gps_records", "region_tuples", "distinct_cells", "compression"},
		Values: map[string]float64{
			"gps_records":    float64(c.GPSRecords),
			"region_tuples":  float64(c.RegionTuples),
			"distinct_cells": float64(c.DistinctCells),
			"compression":    c.Ratio,
		},
	})
	return t, nil
}
