package experiments

import (
	"strings"
	"sync"
	"testing"
)

// The experiments are integration-heavy; they share one small-scale
// environment to keep the test run fast.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func smallEnv(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(2026, 0.25)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestNewEnvDefaults(t *testing.T) {
	env := smallEnv(t)
	if env.City == nil || env.City.POIs.Len() < 500 {
		t.Fatalf("environment not built: %+v", env)
	}
	if env.scaleInt(8) != 2 {
		t.Fatalf("scaleInt(8) at 0.25 = %d", env.scaleInt(8))
	}
	if env.scaleInt(1) != 1 {
		t.Fatal("scaleInt must never return < 1")
	}
	// Scale <= 0 falls back to 1.
	if e, err := NewEnv(1, -1); err != nil || e.Scale != 1 {
		t.Fatalf("negative scale: %v %v", e, err)
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(Registry) != len(Order) {
		t.Fatalf("registry has %d entries, order lists %d", len(Registry), len(Order))
	}
	for _, id := range Order {
		if Registry[id] == nil {
			t.Fatalf("experiment %q missing from the registry", id)
		}
	}
	// Every table and figure of DESIGN.md's index is present.
	for _, id := range []string{"table1", "table2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig17", "compression"} {
		if _, ok := Registry[id]; !ok {
			t.Fatalf("experiment %q missing", id)
		}
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Notes: []string{"a note"}}
	tbl.Rows = append(tbl.Rows, Row{Label: "row", Columns: []string{"v"}, Values: map[string]float64{"v": 0.5}})
	s := tbl.Format()
	if !strings.Contains(s, "== x: demo ==") || !strings.Contains(s, "v=0.5") || !strings.Contains(s, "note: a note") {
		t.Fatalf("Format = %q", s)
	}
}

func TestTable1Shape(t *testing.T) {
	env := smallEnv(t)
	tbl, err := Table1(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("table1 rows = %d", len(tbl.Rows))
	}
	taxi := tbl.Rows[0].Values
	cars := tbl.Rows[1].Values
	// Taxi: few objects; Milan cars: many objects with sparser sampling.
	if taxi["objects"] >= cars["objects"] {
		t.Fatalf("taxi objects %v should be fewer than car objects %v", taxi["objects"], cars["objects"])
	}
	if taxi["sampling_s"] >= cars["sampling_s"] {
		t.Fatal("taxi sampling should be denser than car sampling")
	}
	if taxi["gps_records"] <= 0 || cars["gps_records"] <= 0 {
		t.Fatal("record counts must be positive")
	}
}

func TestFig9BuildingTransportDominate(t *testing.T) {
	env := smallEnv(t)
	tbl, err := Fig9(env)
	if err != nil {
		t.Fatal(err)
	}
	shares := map[string]float64{}
	for _, r := range tbl.Rows {
		if v, ok := r.Values["trajectory"]; ok {
			shares[r.Label] = v
		}
	}
	combined := shares["1.2"] + shares["1.3"] + shares["1.1"]
	if combined < 0.5 {
		t.Fatalf("urban categories cover only %v of taxi records; paper reports ~83%% for 1.2+1.3", combined)
	}
	// The move/stop split row exists and the move share dominates for taxis.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last.Values["move_share"] <= last.Values["stop_share"] {
		t.Fatalf("taxi moves should dominate stops: %+v", last.Values)
	}
}

func TestFig10ShapeAndBestRegion(t *testing.T) {
	env := smallEnv(t)
	tbl, err := Fig10(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("fig10 rows = %d", len(tbl.Rows))
	}
	var best float64
	for _, r := range tbl.Rows {
		for _, c := range r.Columns {
			v := r.Values[c]
			if v < 0 || v > 1 {
				t.Fatalf("accuracy %v out of range in %s/%s", v, r.Label, c)
			}
			if v > best {
				best = v
			}
		}
	}
	if best < 0.85 {
		t.Fatalf("best matching accuracy = %v; the paper reports 90%%+ on the benchmark drive", best)
	}
}

func TestFig11StopDistributionShape(t *testing.T) {
	env := smallEnv(t)
	tbl, err := Fig11(env)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]map[string]float64{}
	for _, r := range tbl.Rows {
		vals[r.Label] = r.Values
	}
	// POI column mirrors the Milan shares; item sale + person life dominate
	// the stop column as in the paper.
	if vals["person life"]["poi"] <= vals["services"]["poi"] {
		t.Fatal("POI column should follow the Milan ordering")
	}
	stopsTop := vals["item sale"]["stop"] + vals["person life"]["stop"]
	stopsRest := vals["services"]["stop"] + vals["feedings"]["stop"] + vals["unknown"]["stop"]
	if stopsTop <= stopsRest {
		t.Fatalf("item sale + person life (%v) should dominate stop categories (rest %v)", stopsTop, stopsRest)
	}
}

func TestCompressionClaim(t *testing.T) {
	env := smallEnv(t)
	tbl, err := Compression(env)
	if err != nil {
		t.Fatal(err)
	}
	v := tbl.Rows[0].Values
	if v["compression"] < 0.9 {
		t.Fatalf("compression = %v; the paper reports ~99.7%% over 5 months, and even hours of data should exceed 90%%", v["compression"])
	}
	if v["distinct_cells"] >= v["gps_records"] || v["region_tuples"] >= v["gps_records"] {
		t.Fatal("region representation must be far smaller than the GPS records")
	}
}

func TestPeopleFiguresShape(t *testing.T) {
	env := smallEnv(t)
	t2, err := Table2(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 7 { // 6 users + total row
		t.Fatalf("table2 rows = %d", len(t2.Rows))
	}
	for _, r := range t2.Rows[:6] {
		if r.Values["gps_records"] <= 0 || r.Values["daily_trajectories"] <= 0 {
			t.Fatalf("user row %q has non-positive counts: %+v", r.Label, r.Values)
		}
	}
	f12, err := Fig12(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.Rows) < 6 {
		t.Fatalf("fig12 rows = %d", len(f12.Rows))
	}
	f13, err := Fig13(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(f13.Rows) != 6 {
		t.Fatalf("fig13 rows = %d", len(f13.Rows))
	}
	f14, err := Fig14(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(f14.Rows) != 6 {
		t.Fatalf("fig14 rows = %d", len(f14.Rows))
	}
	for _, r := range f14.Rows {
		if len(r.Columns) == 0 || len(r.Columns) > 5 {
			t.Fatalf("fig14 row %q has %d top categories", r.Label, len(r.Columns))
		}
	}
	f15, err := Fig15(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(f15.Rows) == 0 {
		t.Fatal("fig15 produced no rows")
	}
	modes := map[string]bool{}
	for _, r := range f15.Rows {
		if strings.HasPrefix(r.Label, "share of move time: ") {
			modes[strings.TrimPrefix(r.Label, "share of move time: ")] = true
		}
	}
	if !modes["walk"] {
		t.Fatalf("fig15 mode shares missing walking: %v", modes)
	}
	f17, err := Fig17(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(f17.Rows) < 4 {
		t.Fatalf("fig17 rows = %d", len(f17.Rows))
	}
	for _, r := range f17.Rows {
		if r.Values["count"] <= 0 {
			t.Fatalf("fig17 stage %q has no observations", r.Label)
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow; skipped in -short mode")
	}
	env := smallEnv(t)
	mm, err := AblationMapMatching(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Rows) != 5 {
		t.Fatalf("ablation-mapmatch rows = %d", len(mm.Rows))
	}
	// At the highest noise level the global matcher should not be worse
	// than the per-point baseline.
	last := mm.Rows[len(mm.Rows)-1]
	if last.Values["global"] < last.Values["nearest"]-0.02 {
		t.Fatalf("global matching (%v) should not be clearly worse than nearest (%v) under heavy noise",
			last.Values["global"], last.Values["nearest"])
	}
	hm, err := AblationHMM(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(hm.Rows) == 0 {
		t.Fatal("ablation-hmm produced no rows")
	}
	for _, r := range hm.Rows {
		if r.Values["hmm"] < 0 || r.Values["hmm"] > 1 || r.Values["nearest"] < 0 || r.Values["nearest"] > 1 {
			t.Fatalf("accuracy out of range: %+v", r.Values)
		}
	}
}
