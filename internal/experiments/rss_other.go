//go:build !linux

package experiments

// peakRSSBytes is unavailable off Linux; the storage experiment reports 0
// and the CI assertion skips the row.
func peakRSSBytes() float64 { return 0 }
