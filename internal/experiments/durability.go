package experiments

import (
	"fmt"
	"os"
	"time"

	"semitri"
	"semitri/internal/store"
	"semitri/internal/wal"
	"semitri/internal/workload"
)

// DurabilityOverhead measures what the write-ahead log costs the streaming
// hot path and what recovery buys back: the same people workload is
// streamed through a WAL-off pipeline and a WAL-on one (group-commit
// fsync), reporting ns/record for both and the relative overhead; the
// resulting log is then recovered — pure replay, and again after a
// checkpoint (snapshot + tail) — with the rebuilt store verified against
// the live one. This is not a paper figure: the paper delegates durability
// to PostgreSQL; the row documents that the reproduction's own durability
// layer keeps the online path within budget (expected: group commit within
// ~25% of WAL-off).
func DurabilityOverhead(env *Env) (*Table, error) {
	// A longer feed than most experiments use: durability has a fixed
	// end-of-stream cost (the close-time sync of the last group-commit
	// window), and the steady-state per-record overhead is the number that
	// matters, so the run must dwarf the fixed part.
	cfg := workload.DefaultPeopleConfig(4, env.scaleInt(3), env.Seed+41)
	ds, err := workload.GeneratePeople(env.City, cfg)
	if err != nil {
		return nil, err
	}
	records := ds.Records()
	if len(records) == 0 {
		return nil, fmt.Errorf("durability: empty workload")
	}

	// streamRun ingests the workload and reports two per-record figures:
	// the hot path alone (the Add loop — steady-state serving cost) and the
	// whole ingest including Close (which for a durable pipeline is also a
	// durability barrier: the tail annotations plus a final WAL sync).
	streamRun := func(d semitri.Durability) (hotNs, totalNs float64, p *semitri.Pipeline, err error) {
		pcfg := semitri.DefaultConfig()
		pcfg.Durability = d
		p, err = semitri.New(semitri.Sources{
			Landuse: env.City.Landuse, Roads: env.City.Roads, POIs: env.City.POIs,
		}, pcfg)
		if err != nil {
			return 0, 0, nil, err
		}
		sp := p.NewStream()
		start := time.Now()
		for _, r := range records {
			if _, err := sp.Add(r); err != nil {
				return 0, 0, nil, err
			}
		}
		hot := time.Since(start)
		if _, err := sp.Close(); err != nil {
			return 0, 0, nil, err
		}
		total := time.Since(start)
		n := float64(len(records))
		return float64(hot.Nanoseconds()) / n, float64(total.Nanoseconds()) / n, p, nil
	}

	// Interleaved best-of-N passes: one ingest pass is at the mercy of
	// scheduler and GC noise, and the overhead ratio is the headline number,
	// so the two configurations alternate (any machine-load drift hits both)
	// and each side reports its fastest pass. Every pass gets a fresh
	// pipeline; every durable pass gets a fresh log directory.
	const passes = 4
	root, err := os.MkdirTemp("", "semitri-durability-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	minPos := func(dst *float64, v float64) {
		if *dst == 0 || v < *dst {
			*dst = v
		}
	}
	var offHot, offTotal, onHot, onTotal float64
	var p *semitri.Pipeline // last durable pipeline, kept for recovery checks
	var dir string
	for i := 0; i < passes; i++ {
		hot, total, off, err := streamRun(semitri.Durability{})
		if err != nil {
			return nil, err
		}
		_ = off.Close()
		minPos(&offHot, hot)
		minPos(&offTotal, total)
		d := semitri.Durability{Dir: fmt.Sprintf("%s/run-%d", root, i)}
		hot, total, pipe, err := streamRun(d)
		if err != nil {
			return nil, err
		}
		minPos(&onHot, hot)
		minPos(&onTotal, total)
		// Keep the last durable run for the recovery verification and release
		// the superseded one (its WAL goroutines and file handle).
		if p != nil {
			if err := p.Close(); err != nil {
				return nil, err
			}
		}
		p, dir = pipe, d.Dir
	}
	live := p.Store()

	verify := func(rec recovered) error {
		if rec.st.RecordCount() != live.RecordCount() || rec.st.StructuredCount() != live.StructuredCount() {
			return fmt.Errorf("durability: recovered %d records / %d structured, live %d / %d",
				rec.st.RecordCount(), rec.st.StructuredCount(), live.RecordCount(), live.StructuredCount())
		}
		ls, lm := live.EpisodeCounts()
		rs, rm := rec.st.EpisodeCounts()
		if ls != rs || lm != rm {
			return fmt.Errorf("durability: recovered %d/%d episodes, live %d/%d", rs, rm, ls, lm)
		}
		return nil
	}

	// Pure log replay: what a kill -9 restart pays before a checkpoint ran.
	replay, err := timeRecover(dir)
	if err != nil {
		return nil, err
	}
	if err := verify(replay); err != nil {
		return nil, err
	}
	// Checkpoint, then recover again: snapshot load + (near-empty) tail.
	if err := p.Close(); err != nil {
		return nil, err
	}
	fromSnap, err := timeRecover(dir)
	if err != nil {
		return nil, err
	}
	if err := verify(fromSnap); err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:    "durability",
		Title: "durability: WAL group commit overhead and recovery (streaming ingest)",
		Notes: []string{
			fmt.Sprintf("workload: %d records, %d objects; WAL frames are group-committed (one fsync per flush interval)", len(records), len(ds.Objects)),
			"hot = the per-record Add loop (steady-state serving); total additionally includes stream Close — tail annotation plus, with the WAL on, the final durability barrier (sync of the last group-commit window)",
			"expectation: WAL-on streaming stays within ~25% of WAL-off ns/record; recovery is exact (verified against the live store)",
		},
	}
	tbl.Rows = append(tbl.Rows,
		Row{
			Label:   "stream ingest, wal off",
			Columns: []string{"hot_ns", "total_ns"},
			Values:  map[string]float64{"hot_ns": offHot, "total_ns": offTotal},
		},
		Row{
			Label:   "stream ingest, wal on (group commit)",
			Columns: []string{"hot_ns", "total_ns", "overhead_pct", "total_overhead_pct"},
			Values: map[string]float64{
				"hot_ns":             onHot,
				"total_ns":           onTotal,
				"overhead_pct":       (onHot/offHot - 1) * 100,
				"total_overhead_pct": (onTotal/offTotal - 1) * 100,
			},
		},
		Row{
			Label:   "recover: log replay only",
			Columns: []string{"ms", "frames", "records"},
			Values: map[string]float64{
				"ms":      replay.ms,
				"frames":  float64(replay.stats.FramesApplied),
				"records": float64(replay.st.RecordCount()),
			},
		},
		Row{
			Label:   "recover: snapshot + tail",
			Columns: []string{"ms", "frames", "records"},
			Values: map[string]float64{
				"ms":      fromSnap.ms,
				"frames":  float64(fromSnap.stats.FramesApplied),
				"records": float64(fromSnap.st.RecordCount()),
			},
		},
	)
	return tbl, nil
}

type recovered struct {
	st    *store.Store
	stats wal.RecoverStats
	ms    float64
}

func timeRecover(dir string) (recovered, error) {
	start := time.Now()
	st, stats, err := wal.Recover(dir, 0)
	if err != nil {
		return recovered{}, err
	}
	return recovered{st: st, stats: stats, ms: float64(time.Since(start).Microseconds()) / 1000}, nil
}
