package experiments

import (
	"fmt"

	"semitri"
	"semitri/internal/analytics"
	"semitri/internal/core"
	"semitri/internal/stats"
	"semitri/internal/workload"
)

// peopleRun bundles a processed people dataset so several figures can share
// one (comparatively expensive) pipeline run.
type peopleRun struct {
	dataset  *workload.Dataset
	pipeline *semitri.Pipeline
	result   *semitri.Result
}

// runPeople generates and processes the people dataset used by Table 2 and
// Figs. 12-17. Six users over a scaled number of days, mirroring the six
// profiled users of Table 2.
func runPeople(env *Env) (*peopleRun, error) {
	cfg := workload.DefaultPeopleConfig(6, env.scaleInt(5), env.Seed+10)
	ds, err := workload.GeneratePeople(env.City, cfg)
	if err != nil {
		return nil, err
	}
	p, res, err := runPipeline(env, ds, semitri.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &peopleRun{dataset: ds, pipeline: p, result: res}, nil
}

// Table2 reproduces Table 2: the people-trajectory dataset inventory
// (per-user days, GPS record counts and the sizes of the semantic sources).
func Table2(env *Env) (*Table, error) {
	run, err := runPeople(env)
	if err != nil {
		return nil, err
	}
	st := run.pipeline.Store()
	counts := analytics.PerUserCounts(st, run.dataset.Objects)
	t := &Table{
		ID:    "table2",
		Title: "People trajectory dataset (synthetic stand-in for the Nokia smartphone data)",
		Notes: []string{
			"paper: 185 users, 23,188 daily trajectories, 7,306,044 GPS records; 6 profiled users with 45k-200k records each",
			fmt.Sprintf("semantic sources: %d landuse cells, %d road segments, %d POIs",
				env.City.Landuse.NumCells(), env.City.Roads.NumSegments(), env.City.POIs.Len()),
		},
	}
	cols := []string{"gps_records", "daily_trajectories", "stops", "moves"}
	var totalRecords, totalTrajs int
	for _, c := range counts {
		t.Rows = append(t.Rows, Row{
			Label: c.Object, Columns: cols,
			Values: map[string]float64{
				"gps_records":        float64(c.GPSRecords),
				"daily_trajectories": float64(c.Trajectories),
				"stops":              float64(c.Stops),
				"moves":              float64(c.Moves),
			},
		})
		totalRecords += c.GPSRecords
		totalTrajs += c.Trajectories
	}
	t.Rows = append(t.Rows, Row{
		Label: "total", Columns: []string{"gps_records", "daily_trajectories"},
		Values: map[string]float64{
			"gps_records": float64(totalRecords), "daily_trajectories": float64(totalTrajs)},
	})
	return t, nil
}

// Fig12 reproduces Fig. 12: the log-log distribution of the number of GPS
// records per trajectory, per move and per stop for the people dataset.
func Fig12(env *Env) (*Table, error) {
	run, err := runPeople(env)
	if err != nil {
		return nil, err
	}
	trajs, moves, stops := analytics.EpisodeSizeDistributions(run.pipeline.Store())
	t := &Table{
		ID:    "fig12",
		Title: "Log-log distribution of GPS records per trajectory / move / stop (people data)",
		Notes: []string{
			"paper: moves and trajectories reach large record counts (>10^3) while stop sizes mostly stay between 10^1 and a few 10^2",
		},
	}
	addSeries := func(name string, bins []stats.Bin) {
		for _, b := range bins {
			t.Rows = append(t.Rows, Row{
				Label:   fmt.Sprintf("%s >=%.0f records", name, b.Lower),
				Columns: []string{"count"},
				Values:  map[string]float64{"count": float64(b.Count)},
			})
		}
	}
	addSeries("trajectory", trajs.Bins())
	addSeries("move", moves.Bins())
	addSeries("stop", stops.Bins())
	return t, nil
}

// Fig13 reproduces Fig. 13: per-user GPS record, trajectory, stop and move
// counts for the six profiled users.
func Fig13(env *Env) (*Table, error) {
	run, err := runPeople(env)
	if err != nil {
		return nil, err
	}
	counts := analytics.PerUserCounts(run.pipeline.Store(), run.dataset.Objects)
	t := &Table{
		ID:    "fig13",
		Title: "Per-user GPS / trajectory / stop / move counts (6 users)",
		Notes: []string{"paper: GPS counts plotted divided by 100 to emphasise the compression from records to episodes"},
	}
	cols := []string{"gps_div100", "trajectories", "stops", "moves"}
	for _, c := range counts {
		t.Rows = append(t.Rows, Row{
			Label: c.Object, Columns: cols,
			Values: map[string]float64{
				"gps_div100":   float64(c.GPSRecords) / 100,
				"trajectories": float64(c.Trajectories),
				"stops":        float64(c.Stops),
				"moves":        float64(c.Moves),
			},
		})
	}
	return t, nil
}

// Fig14 reproduces Fig. 14: the land-use category distribution per user with
// the top-5 categories, showing the per-user variation the paper highlights.
func Fig14(env *Env) (*Table, error) {
	run, err := runPeople(env)
	if err != nil {
		return nil, err
	}
	st := run.pipeline.Store()
	t := &Table{
		ID:    "fig14",
		Title: "Per-user land-use category distribution and top-5 categories",
		Notes: []string{
			"paper: building (1.2) and transportation (1.3) dominate (~61% combined for people vs ~83% for taxis), with user-specific categories in the tail",
		},
	}
	for _, obj := range run.dataset.Objects {
		d := analytics.LanduseDistribution(st, []string{obj}, nil)
		top := d.TopN(5)
		row := Row{Label: obj + " top5: " + fmt.Sprint(top), Columns: nil, Values: map[string]float64{}}
		for _, cat := range top {
			row.Columns = append(row.Columns, cat)
			row.Values[cat] = d.Share(cat)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig15 reproduces Figs. 15/16: the move annotation of a commute, i.e. the
// sequence of matched road segments with inferred transportation modes for a
// user whose preferred mode is the metro (Fig. 15) and the aggregate share
// of move time per mode across all users (Figs. 15/16 combined view).
func Fig15(env *Env) (*Table, error) {
	run, err := runPeople(env)
	if err != nil {
		return nil, err
	}
	st := run.pipeline.Store()
	t := &Table{
		ID:    "fig15",
		Title: "Move annotation: transport modes of matched road sequences (Figs. 15/16)",
		Notes: []string{
			"paper: a home-office trip decomposes into walk -> metro (M1) -> walk; other users use bike or bus with walking at both ends",
		},
	}
	modeDist := analytics.ModeDistribution(st, semitri.InterpretationLine)
	for _, mode := range sortedKeys(modeDist.Shares()) {
		t.Rows = append(t.Rows, Row{
			Label:   "share of move time: " + mode,
			Columns: []string{"share"},
			Values:  map[string]float64{"share": modeDist.Share(mode)},
		})
	}
	// Mode sequence of one concrete commute (the first trajectory of the
	// metro user, user-004 by construction of the workload profile).
	var exampleID string
	for _, id := range st.TrajectoryIDs("user-004") {
		exampleID = id
		break
	}
	if exampleID != "" {
		if lineTraj, ok := st.Structured(exampleID, semitri.InterpretationLine); ok {
			seq := modeSequence(lineTraj)
			for i, leg := range seq {
				t.Rows = append(t.Rows, Row{
					Label:   fmt.Sprintf("example leg %02d: %s via %s", i+1, leg.road, leg.mode),
					Columns: []string{"duration_s"},
					Values:  map[string]float64{"duration_s": leg.seconds},
				})
			}
		}
	}
	return t, nil
}

type modeLeg struct {
	mode    string
	road    string
	seconds float64
}

// modeSequence collapses consecutive tuples with the same mode into legs.
func modeSequence(st *core.StructuredTrajectory) []modeLeg {
	var out []modeLeg
	for _, tp := range st.Tuples {
		mode := tp.Annotations.Value(core.AnnTransportMode)
		road := tp.Annotations.Value(core.AnnRoadName)
		if len(out) > 0 && out[len(out)-1].mode == mode {
			out[len(out)-1].seconds += tp.Duration().Seconds()
			continue
		}
		out = append(out, modeLeg{mode: mode, road: road, seconds: tp.Duration().Seconds()})
	}
	return out
}

// Fig17 reproduces Fig. 17: the average per-trajectory latency of each
// pipeline stage (episode computation, episode storage, map matching,
// storing matched results, land-use join). Absolute values are much smaller
// than the paper's (embedded store vs PostgreSQL over a network); the
// ordering — storage-dominated, annotation cheap — is the reproduced claim.
func Fig17(env *Env) (*Table, error) {
	run, err := runPeople(env)
	if err != nil {
		return nil, err
	}
	lat := run.pipeline.Latency()
	// Measure store persistence explicitly (the paper's "store" stages write
	// to PostgreSQL; here Save serialises the whole store to JSON).
	t := &Table{
		ID:    "fig17",
		Title: "Latency per pipeline stage (average per trajectory)",
		Notes: []string{
			"paper: per daily trajectory 0.008 s compute episodes, 3.959 s store episodes, 0.162 s map matching, 0.292 s store match results, 0.088 s landuse join",
			"reproduction: absolute values differ (embedded store vs PostgreSQL); compare the ordering of stages",
		},
	}
	for _, stage := range lat.Stages() {
		t.Rows = append(t.Rows, Row{
			Label:   stage,
			Columns: []string{"avg_ms", "count"},
			Values: map[string]float64{
				"avg_ms": float64(lat.Average(stage).Microseconds()) / 1000.0,
				"count":  float64(lat.Count(stage)),
			},
		})
	}
	return t, nil
}
