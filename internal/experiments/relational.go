package experiments

import (
	"fmt"
	"time"

	"semitri"
	"semitri/internal/core"
	"semitri/internal/geo"
	"semitri/internal/poi"
	"semitri/internal/query"
	"semitri/internal/query/lang"
	"semitri/internal/workload"
)

// colocStatement is the canonical cross-object question of the relational
// layer, in the declarative language: objects with stop episodes within
// 200 m and one hour of each other.
const colocStatement = "stops join stops on distance <= 200 and within 1h and distinct objects"

// Relational measures the cross-object relational layer end to end on a
// people workload: streaming ingestion with live index maintenance
// (ns/record), single-table queries through each access path of the planner
// (ns/query), the build/probe co-location join (ns/join) and the same join
// parsed from the declarative one-liner with a top-K aggregation
// (ns/statement). Every query row asserts the planner actually chose the
// access path it claims to measure. This is not a paper figure: the paper
// delegates relational execution to PostgreSQL; the row documents what the
// reproduction's own join planner and language layer cost.
func Relational(env *Env) (*Table, error) {
	cfg := workload.DefaultPeopleConfig(16, env.scaleInt(5), env.Seed+31)
	ds, err := workload.GeneratePeople(env.City, cfg)
	if err != nil {
		return nil, err
	}
	p, err := semitri.New(semitri.Sources{
		Landuse: env.City.Landuse,
		Roads:   env.City.Roads,
		POIs:    env.City.POIs,
	}, semitri.DefaultConfig())
	if err != nil {
		return nil, err
	}
	engine := p.QueryEngine() // attach before ingestion: indexes maintained on the append path
	start := time.Now()
	if _, err := p.ProcessRecords(ds.Records()); err != nil {
		return nil, err
	}
	ingest := time.Since(start)
	nrec := len(ds.Records())

	tbl := &Table{
		ID:    "relational",
		Title: "relational layer: joins, aggregation and the query language (ns/op)",
		Notes: []string{
			"join = stops x stops co-location (within 200 m and 1 h, distinct objects), planned build/probe execution",
			"language = the same join parsed from the declarative one-liner plus a top-10 aggregation",
			"each query row asserts the planner chose the access path it measures",
		},
	}
	tbl.Rows = append(tbl.Rows, Row{
		Label:   "ingest (indexes live)",
		Columns: []string{"ns_per_record", "records"},
		Values: map[string]float64{
			"ns_per_record": float64(ingest.Nanoseconds()) / float64(nrec),
			"records":       float64(nrec),
		},
	})

	day := ds.Records()[0].Time.Truncate(24 * time.Hour)
	annQueries := make([]query.Query, 0, len(poi.AllCategories))
	for _, cat := range poi.AllCategories {
		annQueries = append(annQueries, query.MustBuild(
			query.OnlyStops(), query.WithAnnotation(core.AnnPOICategory, cat.String())))
	}
	var timeQueriesSet []query.Query
	for i, obj := range ds.Objects {
		from := day.Add(time.Duration(6+2*i) * time.Hour)
		timeQueriesSet = append(timeQueriesSet, query.MustBuild(
			query.ForObject(obj), query.Between(from, from.Add(4*time.Hour))))
	}
	var spatialQueries []query.Query
	for i := 0; i < 8; i++ {
		w := geo.RectAround(geo.Pt(float64(1000+i*1100), float64(9000-i*1100)), 1200)
		spatialQueries = append(spatialQueries, query.MustBuild(query.OnlyStops(), query.InWindow(w)))
	}
	trajIDs := p.Store().TrajectoryIDs("")
	if len(trajIDs) > 8 {
		trajIDs = trajIDs[:8]
	}
	var trajQueries []query.Query
	for _, id := range trajIDs {
		trajQueries = append(trajQueries, query.MustBuild(query.ForTrajectory(id)))
	}

	for _, c := range []struct {
		label   string
		path    query.Path
		queries []query.Query
	}{
		{"query via annotation index", query.PathAnnotation, annQueries},
		{"query via object-time index", query.PathObjectTime, timeQueriesSet},
		{"query via spatial grid", query.PathSpatial, spatialQueries},
		{"query via trajectory lookup", query.PathTrajectory, trajQueries},
		{"query via full scan", query.PathScan, []query.Query{{}}},
	} {
		for _, q := range c.queries {
			plan, err := engine.Explain(q)
			if err != nil {
				return nil, err
			}
			if plan.Path != c.path {
				return nil, fmt.Errorf("relational: %s planned %s, expected %s (%s)", c.label, plan.Path, c.path, plan)
			}
		}
		ns, hits, err := timeQueries(c.queries, func(q query.Query) (int, error) {
			ms, err := engine.Execute(q)
			return len(ms), err
		})
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, Row{
			Label:   c.label,
			Columns: []string{"ns_per_query", "hits"},
			Values:  map[string]float64{"ns_per_query": ns, "hits": float64(hits)},
		})
	}

	// The co-location join through the typed API. timeOp reruns the full
	// plan+build+probe cycle, so the row prices the join end to end.
	join := query.Join{
		Left:  query.MustBuild(query.OnlyStops()),
		Right: query.MustBuild(query.OnlyStops()),
		On:    query.JoinOn{Within: time.Hour, MaxDistance: 200, DistinctObjects: true},
	}
	pairs := 0
	nsJoin, err := timeOp(func() error {
		ps, err := engine.ExecuteJoin(join)
		pairs = len(ps)
		return err
	})
	if err != nil {
		return nil, err
	}
	tbl.Rows = append(tbl.Rows, Row{
		Label:   "join co-location (200 m, 1 h)",
		Columns: []string{"ns_per_join", "pairs"},
		Values:  map[string]float64{"ns_per_join": nsJoin, "pairs": float64(pairs)},
	})

	// The same join through the parsed language, aggregation included.
	stmt := colocStatement + " group by object distinct objects top 10"
	groups := 0
	nsLang, err := timeOp(func() error {
		res, err := lang.Run(engine, stmt)
		groups = len(res.Groups)
		return err
	})
	if err != nil {
		return nil, err
	}
	tbl.Rows = append(tbl.Rows, Row{
		Label:   "language (parse+join+aggregate)",
		Columns: []string{"ns_per_statement", "groups"},
		Values:  map[string]float64{"ns_per_statement": nsLang, "groups": float64(groups)},
	})
	return tbl, nil
}

// timeOp runs op repeatedly until it accumulates enough wall-clock for a
// stable ns/op (the single-operation counterpart of timeQueries).
func timeOp(op func() error) (float64, error) {
	const minDuration = 50 * time.Millisecond
	passes := 0
	start := time.Now()
	for {
		if err := op(); err != nil {
			return 0, err
		}
		passes++
		if time.Since(start) >= minDuration && passes >= 3 {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(passes), nil
}
