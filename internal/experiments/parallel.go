package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"semitri"
	"semitri/internal/query"
	"semitri/internal/workload"
)

// parWorkers is the parallel setting the experiment compares against serial
// execution. Fixed (not GOMAXPROCS) so the artifact rows are comparable
// across machines; on fewer cores the parallel rows still run — the results
// are byte-identical by construction — they just show no speedup.
const parWorkers = 4

// Parallel measures the parallel query executor against serial execution on
// the relational workload: the build/probe co-location join (probe fan-out),
// a full-scan query (sharded stripe fan-out) and a top-K aggregation over
// the join's pairs (per-worker partial folds), each at workers=1 and
// workers=4 with interleaved best-of timing. Before timing, the experiment
// asserts the parallel results are byte-identical to the serial ones —
// determinism is the executor's contract, so a mismatch fails the run. Two
// allocs/op rows (serial join and query) track the hot path's allocation
// budget across PRs. This is not a paper figure: the paper's relational
// execution lives in PostgreSQL; the rows document how the reproduction's
// own executor scales with cores.
func Parallel(env *Env) (*Table, error) {
	// A heavier population than the relational experiment uses: the fan-out
	// only pays off when the build side clears the serial threshold by a wide
	// margin, and the speedup ratio needs enough work per pass to be stable.
	cfg := workload.DefaultPeopleConfig(24, env.scaleInt(10), env.Seed+31)
	ds, err := workload.GeneratePeople(env.City, cfg)
	if err != nil {
		return nil, err
	}
	p, err := semitri.New(semitri.Sources{
		Landuse: env.City.Landuse,
		Roads:   env.City.Roads,
		POIs:    env.City.POIs,
	}, semitri.DefaultConfig())
	if err != nil {
		return nil, err
	}
	engine := p.QueryEngine()
	if _, err := p.ProcessRecords(ds.Records()); err != nil {
		return nil, err
	}

	join := query.Join{
		Left:  query.MustBuild(query.OnlyStops()),
		Right: query.MustBuild(query.OnlyStops()),
		On:    query.JoinOn{Within: time.Hour, MaxDistance: 200, DistinctObjects: true},
	}
	scanQ := query.MustBuild(query.OnlyStops())

	// Byte-identical cross-check first: the serial results are the reference
	// every parallel setting must reproduce exactly, order included.
	engine.SetParallelism(1)
	refPairs, err := engine.ExecuteJoin(join)
	if err != nil {
		return nil, err
	}
	refMatches, err := engine.Execute(scanQ)
	if err != nil {
		return nil, err
	}
	agg := query.Aggregate{By: query.DimObject, Metric: query.MetricDistinctObjects, K: 10, Workers: 1}
	refGroups, err := query.AggregatePairs(agg, refPairs)
	if err != nil {
		return nil, err
	}
	engine.SetParallelism(parWorkers)
	gotPairs, err := engine.ExecuteJoin(join)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(refPairs, gotPairs) {
		return nil, fmt.Errorf("parallel: join results diverge from serial at workers=%d", parWorkers)
	}
	gotMatches, err := engine.Execute(scanQ)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(refMatches, gotMatches) {
		return nil, fmt.Errorf("parallel: scan results diverge from serial at workers=%d", parWorkers)
	}
	agg.Workers = parWorkers
	gotGroups, err := query.AggregatePairs(agg, refPairs)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(refGroups, gotGroups) {
		return nil, fmt.Errorf("parallel: aggregation diverges from serial at workers=%d", parWorkers)
	}

	// Interleaved best-of timing: the serial and parallel settings alternate
	// inside each pass so machine-load drift hits both, and each side keeps
	// its fastest pass — the speedup ratio is the headline number.
	type timing struct{ joinNs, queryNs, aggNs float64 }
	measure := func(workers int) (timing, error) {
		var t timing
		engine.SetParallelism(workers)
		var err error
		if t.joinNs, err = timeOp(func() error {
			_, err := engine.ExecuteJoin(join)
			return err
		}); err != nil {
			return t, err
		}
		if t.queryNs, err = timeOp(func() error {
			_, err := engine.Execute(scanQ)
			return err
		}); err != nil {
			return t, err
		}
		a := agg
		a.Workers = workers
		if t.aggNs, err = timeOp(func() error {
			_, err := query.AggregatePairs(a, refPairs)
			return err
		}); err != nil {
			return t, err
		}
		return t, nil
	}
	minPos := func(dst *float64, v float64) {
		if *dst == 0 || v < *dst {
			*dst = v
		}
	}
	var serial, par timing
	const passes = 3
	for i := 0; i < passes; i++ {
		s, err := measure(1)
		if err != nil {
			return nil, err
		}
		minPos(&serial.joinNs, s.joinNs)
		minPos(&serial.queryNs, s.queryNs)
		minPos(&serial.aggNs, s.aggNs)
		m, err := measure(parWorkers)
		if err != nil {
			return nil, err
		}
		minPos(&par.joinNs, m.joinNs)
		minPos(&par.queryNs, m.queryNs)
		minPos(&par.aggNs, m.aggNs)
	}

	// Allocation budget of the serial hot path (the parallel paths add the
	// per-worker buffers by design; the regression row guards the per-probe
	// and per-candidate costs the pools are meant to eliminate).
	engine.SetParallelism(1)
	allocsJoin, err := allocsPerOp(func() error {
		_, err := engine.ExecuteJoin(join)
		return err
	})
	if err != nil {
		return nil, err
	}
	allocsQuery, err := allocsPerOp(func() error {
		_, err := engine.Execute(scanQ)
		return err
	})
	if err != nil {
		return nil, err
	}
	engine.SetParallelism(0) // back to the default

	tbl := &Table{
		ID:    "parallel",
		Title: "parallel query execution: serial vs 4 workers (ns/op, byte-identical results)",
		Notes: []string{
			"join = stops x stops co-location (200 m, 1 h, distinct objects); query = full scan over stops",
			"parallel results verified byte-identical to serial before timing; best of interleaved passes",
			"speedup tracks cores: ~1.0 on a single-core runner is expected, not a regression",
		},
	}
	addRow := func(label string, t timing, extra map[string]float64) {
		vals := map[string]float64{
			"ns_per_join":  t.joinNs,
			"ns_per_query": t.queryNs,
			"ns_per_agg":   t.aggNs,
		}
		cols := []string{"ns_per_join", "ns_per_query", "ns_per_agg"}
		for k, v := range extra {
			cols = append(cols, k)
			vals[k] = v
		}
		tbl.Rows = append(tbl.Rows, Row{Label: label, Columns: cols, Values: vals})
	}
	addRow("workers=1 (serial)", serial, map[string]float64{"pairs": float64(len(refPairs))})
	addRow(fmt.Sprintf("workers=%d", parWorkers), par, map[string]float64{"hits": float64(len(refMatches))})
	tbl.Rows = append(tbl.Rows, Row{
		Label:   "speedup",
		Columns: []string{"join_speedup", "query_speedup", "agg_speedup", "cores"},
		Values: map[string]float64{
			"join_speedup":  serial.joinNs / par.joinNs,
			"query_speedup": serial.queryNs / par.queryNs,
			"agg_speedup":   serial.aggNs / par.aggNs,
			"cores":         float64(runtime.GOMAXPROCS(0)),
		},
	})
	tbl.Rows = append(tbl.Rows, Row{
		Label:   "allocations (serial hot path)",
		Columns: []string{"allocs_per_join", "allocs_per_query"},
		Values: map[string]float64{
			"allocs_per_join":  allocsJoin,
			"allocs_per_query": allocsQuery,
		},
	})
	return tbl, nil
}

// allocsPerOp reports the mean heap allocations one run of op costs,
// measured over several runs with the collector quiesced first (the
// single-goroutine counterpart of testing.B's -benchmem column).
func allocsPerOp(op func() error) (float64, error) {
	runtime.GC()
	const ops = 10
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < ops; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / ops, nil
}
