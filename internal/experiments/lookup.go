package experiments

import (
	"fmt"
	"time"

	"semitri/internal/geo"
	"semitri/internal/gps"
	"semitri/internal/line"
	"semitri/internal/point"
	"semitri/internal/region"
	"semitri/internal/workload"
)

// Lookup measures the spatial-layer hot path: the per-record candidate
// lookups the three annotation layers issue against the shared spatial
// indexes, cached (per-object locality cursors) and uncached, on a
// person-day workload. It reports per-lookup ns/op, cursor hit rates and a
// combined ns/record figure — the per-record spatial cost of the annotation
// pipeline, the number the locality cache is meant to shrink.
func Lookup(env *Env) (*Table, error) {
	ds, err := workload.GeneratePeople(env.City, workload.DefaultPeopleConfig(1, 1, 99))
	if err != nil {
		return nil, err
	}
	sorted := append([]gps.Record(nil), ds.Records()...)
	gps.SortRecords(sorted)
	records := gps.Clean(sorted, gps.DefaultCleaningConfig())
	if len(records) == 0 {
		return nil, fmt.Errorf("lookup: empty workload")
	}
	positions := make([]geo.Point, len(records))
	for i, r := range records {
		positions[i] = r.Position
	}

	regionAnn, err := region.NewAnnotator(env.City.Landuse)
	if err != nil {
		return nil, err
	}
	lineAnn, err := line.NewAnnotator(env.City.Roads, line.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pointAnn, err := point.NewAnnotator(env.City.POIs, point.DefaultConfig())
	if err != nil {
		return nil, err
	}

	// Repeat each pass until it accumulates enough work for a stable number.
	const repeats = 5
	nsPerOp := func(queries int, pass func()) float64 {
		start := time.Now()
		for r := 0; r < repeats; r++ {
			pass()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(repeats*queries)
	}

	radius := lineAnn.Config().CandidateRadius

	regionCur := regionAnn.NewCursor()
	regionCached := nsPerOp(len(records), func() {
		if _, err := regionAnn.AnnotateTrajectoryCursor(&gps.RawTrajectory{ID: "bench", Records: records}, regionCur); err != nil {
			panic(err)
		}
	})
	regionUncached := nsPerOp(len(records), func() {
		if _, err := regionAnn.AnnotateTrajectory(&gps.RawTrajectory{ID: "bench", Records: records}); err != nil {
			panic(err)
		}
	})
	regionHits, regionMisses := regionCur.Stats()

	lineCur := lineAnn.NewCursor()
	lineCached := nsPerOp(len(positions), func() {
		for _, p := range positions {
			lineAnn.Candidates(p, radius, lineCur)
		}
	})
	lineUncached := nsPerOp(len(positions), func() {
		for _, p := range positions {
			lineAnn.Candidates(p, radius, nil)
		}
	})
	lineHits, lineMisses := lineCur.Stats()

	// The point layer's dominant spatial cost is the row-major cell sweep of
	// the emission discretization (one candidate query per grid cell at
	// annotator construction); per-stop queries at run time are answered
	// from the precomputed cells.
	g := env.City.POIs.Grid()
	pointQueries := make([]geo.Point, 0, g.NumCells())
	for id := 0; id < g.NumCells(); id++ {
		pointQueries = append(pointQueries, g.CellRectByID(id).Center())
	}
	pointCur := pointAnn.NewCursor()
	pointCached := nsPerOp(len(pointQueries), func() {
		for _, p := range pointQueries {
			pointAnn.Candidates(p, pointCur)
		}
	})
	pointUncached := nsPerOp(len(pointQueries), func() {
		for _, p := range pointQueries {
			pointAnn.Candidates(p, nil)
		}
	})
	pointHits, pointMisses := pointCur.Stats()

	hitRate := func(h, m uint64) float64 {
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	}
	// Combined per-record spatial cost: every record pays one region cell
	// lookup and one line candidate query (the point layer's sweep is a
	// per-construction cost, reported on its own row).
	combinedCached := regionCached + lineCached
	combinedUncached := regionUncached + lineUncached

	tbl := &Table{
		ID:    "lookup",
		Title: "spatial-layer lookup cost (people day, cached locality cursors vs uncached)",
		Rows: []Row{
			{Label: "region cell lookup", Columns: []string{"ns_cached", "ns_uncached", "hit_rate"},
				Values: map[string]float64{"ns_cached": regionCached, "ns_uncached": regionUncached, "hit_rate": hitRate(regionHits, regionMisses)}},
			{Label: "line candidate query", Columns: []string{"ns_cached", "ns_uncached", "hit_rate"},
				Values: map[string]float64{"ns_cached": lineCached, "ns_uncached": lineUncached, "hit_rate": hitRate(lineHits, lineMisses)}},
			{Label: "point candidate sweep", Columns: []string{"ns_cached", "ns_uncached", "hit_rate"},
				Values: map[string]float64{"ns_cached": pointCached, "ns_uncached": pointUncached, "hit_rate": hitRate(pointHits, pointMisses)}},
			{Label: "combined per record", Columns: []string{"ns_cached", "ns_uncached"},
				Values: map[string]float64{"ns_cached": combinedCached, "ns_uncached": combinedUncached}},
		},
		Notes: []string{
			fmt.Sprintf("%d records; region/line query the record stream, point sweeps the %d-cell emission grid", len(records), g.NumCells()),
			"cached and uncached lookups return identical candidate sets (asserted by internal/spatial property tests)",
		},
	}
	return tbl, nil
}
