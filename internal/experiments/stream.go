package experiments

import (
	"fmt"
	"time"

	"semitri"
	"semitri/internal/gps"
	"semitri/internal/workload"
)

// Stream measures streaming ingestion itself: the same people workload is
// fed through the serial Add loop and through the object-sharded concurrent
// fan-in, reporting ns/record for both. This is not a paper figure: the
// paper's pipeline is offline; the rows track the reproduction's online
// ingest cost across PRs (the fan-in speedup only shows on multi-core
// hardware — the results are identical either way, so the row asserts
// nothing about the ratio).
func Stream(env *Env) (*Table, error) {
	cfg := workload.DefaultPeopleConfig(8, env.scaleInt(3), env.Seed+53)
	ds, err := workload.GeneratePeople(env.City, cfg)
	if err != nil {
		return nil, err
	}
	records := ds.Records()
	if len(records) == 0 {
		return nil, fmt.Errorf("stream: empty workload")
	}
	newPipeline := func() (*semitri.Pipeline, error) {
		return semitri.New(semitri.Sources{
			Landuse: env.City.Landuse, Roads: env.City.Roads, POIs: env.City.POIs,
		}, semitri.DefaultConfig())
	}
	serialRun := func() (float64, error) {
		p, err := newPipeline()
		if err != nil {
			return 0, err
		}
		defer p.Close()
		sp := p.NewStream()
		start := time.Now()
		for _, r := range records {
			if _, err := sp.Add(r); err != nil {
				return 0, err
			}
		}
		if _, err := sp.Close(); err != nil {
			return 0, err
		}
		return float64(time.Since(start).Nanoseconds()) / float64(len(records)), nil
	}
	const fanWorkers = 4
	fanRun := func() (float64, error) {
		p, err := newPipeline()
		if err != nil {
			return 0, err
		}
		defer p.Close()
		sp := p.NewStream()
		feed := make(chan gps.Record, 256)
		errc := make(chan error, 1)
		start := time.Now()
		go func() { errc <- sp.FanIn(feed, fanWorkers, nil) }()
		for _, r := range records {
			feed <- r
		}
		close(feed)
		if err := <-errc; err != nil {
			return 0, err
		}
		if _, err := sp.Close(); err != nil {
			return 0, err
		}
		return float64(time.Since(start).Nanoseconds()) / float64(len(records)), nil
	}

	// Interleaved best-of passes, like the durability experiment: drift in
	// machine load hits both configurations equally.
	const passes = 3
	var serialNs, fanNs float64
	for i := 0; i < passes; i++ {
		s, err := serialRun()
		if err != nil {
			return nil, err
		}
		if serialNs == 0 || s < serialNs {
			serialNs = s
		}
		f, err := fanRun()
		if err != nil {
			return nil, err
		}
		if fanNs == 0 || f < fanNs {
			fanNs = f
		}
	}

	return &Table{
		ID:    "stream",
		Title: "streaming ingestion: serial vs object-sharded fan-in (ns/record)",
		Rows: []Row{
			{
				Label:   "serial Add loop",
				Columns: []string{"ns_per_record", "records"},
				Values: map[string]float64{
					"ns_per_record": serialNs,
					"records":       float64(len(records)),
				},
			},
			{
				Label:   fmt.Sprintf("fan-in (%d workers)", fanWorkers),
				Columns: []string{"ns_per_record", "workers"},
				Values: map[string]float64{
					"ns_per_record": fanNs,
					"workers":       fanWorkers,
				},
			},
		},
		Notes: []string{
			"best of interleaved passes; batch/stream parity guarantees identical stores either way",
		},
	}, nil
}
