package poi

import (
	"math"
	"strings"
	"testing"

	"semitri/internal/geo"
)

func TestCategoryBasics(t *testing.T) {
	if NumCategories != 5 || len(AllCategories) != 5 {
		t.Fatal("there must be exactly five categories")
	}
	names := []string{"services", "feedings", "item sale", "person life", "unknown"}
	for i, c := range AllCategories {
		if c.String() != names[i] {
			t.Fatalf("String(%d) = %q", i, c.String())
		}
		if !c.Valid() {
			t.Fatalf("category %v should be valid", c)
		}
	}
	if Category(9).Valid() || Category(-1).Valid() {
		t.Fatal("out-of-range categories should be invalid")
	}
	if !strings.HasPrefix(Category(9).String(), "category(") {
		t.Fatalf("unknown category string = %q", Category(9).String())
	}
}

func TestMilanShares(t *testing.T) {
	total := 0
	for _, n := range MilanCounts {
		total += n
	}
	if total != MilanTotal {
		t.Fatalf("Milan counts sum to %d, constant says %d", total, MilanTotal)
	}
	shares := MilanShares()
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Milan shares sum to %v", sum)
	}
	// Person life is the largest category, unknown the smallest (Fig. 5).
	if shares[PersonLife] <= shares[ItemSale] || shares[Unknown] >= shares[Services] {
		t.Fatalf("share ordering wrong: %v", shares)
	}
	if math.Abs(shares[Services]-4339.0/39772.0) > 1e-12 {
		t.Fatalf("services share = %v", shares[Services])
	}
}

func TestNewSetAndAdd(t *testing.T) {
	if _, err := NewSet(geo.EmptyRect(), 100); err == nil {
		t.Fatal("empty extent should error")
	}
	s, err := NewSet(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 50)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || len(s.All()) != 0 {
		t.Fatal("new set should be empty")
	}
	p, err := s.Add("cafe", Feedings, geo.Pt(100, 100))
	if err != nil || p.ID != 0 {
		t.Fatalf("Add = %+v, %v", p, err)
	}
	if _, err := s.Add("bad", Category(12), geo.Pt(10, 10)); err == nil {
		t.Fatal("invalid category should error")
	}
	if _, err := s.Add("outside", Services, geo.Pt(-10, 0)); err == nil {
		t.Fatal("outside position should error")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.ByCategory(Feedings); len(got) != 1 || got[0].Name != "cafe" {
		t.Fatalf("ByCategory = %+v", got)
	}
	if got := s.ByCategory(Services); len(got) != 0 {
		t.Fatal("Services should be empty")
	}
	counts := s.CategoryCounts()
	if counts[int(Feedings)] != 1 {
		t.Fatalf("CategoryCounts = %v", counts)
	}
	if s.Grid() == nil {
		t.Fatal("Grid accessor nil")
	}
}

func TestCategorySharesEmptyAndPopulated(t *testing.T) {
	s, _ := NewSet(geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100)), 10)
	shares := s.CategoryShares()
	for _, v := range shares {
		if math.Abs(v-0.2) > 1e-12 {
			t.Fatalf("empty set shares should be uniform: %v", shares)
		}
	}
	s.Add("a", Services, geo.Pt(1, 1))
	s.Add("b", Services, geo.Pt(2, 2))
	s.Add("c", ItemSale, geo.Pt(3, 3))
	shares = s.CategoryShares()
	if math.Abs(shares[int(Services)]-2.0/3.0) > 1e-12 || math.Abs(shares[int(ItemSale)]-1.0/3.0) > 1e-12 {
		t.Fatalf("shares = %v", shares)
	}
}

func TestSpatialQueries(t *testing.T) {
	s, _ := NewSet(geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000)), 50)
	s.Add("a", Services, geo.Pt(100, 100))
	s.Add("b", Feedings, geo.Pt(110, 100))
	s.Add("c", ItemSale, geo.Pt(500, 500))
	got := s.WithinDistance(geo.Pt(100, 100), 20)
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("WithinDistance = %+v", got)
	}
	got = s.WithinRect(geo.NewRect(geo.Pt(0, 0), geo.Pt(200, 200)))
	if len(got) != 2 {
		t.Fatalf("WithinRect = %+v", got)
	}
	nearest, d, ok := s.Nearest(geo.Pt(480, 480))
	if !ok || nearest.Name != "c" || math.Abs(d-geo.Pt(480, 480).DistanceTo(geo.Pt(500, 500))) > 1e-9 {
		t.Fatalf("Nearest = %v, %v, %v", nearest, d, ok)
	}
	empty, _ := NewSet(geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10)), 5)
	if _, _, ok := empty.Nearest(geo.Pt(1, 1)); ok {
		t.Fatal("nearest on empty set should be !ok")
	}
	// Density: 2 POIs within 20 m.
	density := s.DensityAround(geo.Pt(100, 100), 20)
	want := 2.0 / (math.Pi * 400)
	if math.Abs(density-want) > 1e-12 {
		t.Fatalf("DensityAround = %v want %v", density, want)
	}
	if s.DensityAround(geo.Pt(100, 100), 0) != 0 {
		t.Fatal("zero radius density should be 0")
	}
}

func TestGenerateMilanLike(t *testing.T) {
	cfg := DefaultGeneratorConfig(5000, 11)
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5000 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Category shares within 3 percentage points of the Milan shares.
	want := MilanShares()
	got := s.CategoryShares()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.03 {
			t.Fatalf("category %v share = %v, want about %v", Category(i), got[i], want[i])
		}
	}
	// Density profile: core denser than periphery.
	center := cfg.Extent.Center()
	coreDensity := s.DensityAround(center, 500)
	peripheryDensity := s.DensityAround(geo.Pt(500, 9500), 500)
	if coreDensity <= peripheryDensity {
		t.Fatalf("core density %v should exceed periphery density %v", coreDensity, peripheryDensity)
	}
	// All POIs inside the extent.
	for _, p := range s.All() {
		if !cfg.Extent.ContainsPoint(p.Position) {
			t.Fatalf("POI %d outside extent: %v", p.ID, p.Position)
		}
	}
	// Determinism.
	s2, _ := Generate(cfg)
	for i, p := range s.All() {
		q := s2.All()[i]
		if p.Category != q.Category || !p.Position.Equal(q.Position, 1e-12) {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateCustomSharesAndErrors(t *testing.T) {
	cfg := DefaultGeneratorConfig(1000, 3)
	cfg.Shares = []float64{1, 0, 0, 0, 0}
	s, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CategoryShares(); got[int(Services)] != 1 {
		t.Fatalf("all-services shares = %v", got)
	}
	bad := cfg
	bad.Total = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero total should error")
	}
	bad = cfg
	bad.Shares = []float64{0.5, 0.5}
	if _, err := Generate(bad); err == nil {
		t.Fatal("wrong share vector length should error")
	}
	// Nil shares defaults to Milan; zero cell size defaults sensibly.
	okCfg := DefaultGeneratorConfig(200, 5)
	okCfg.Shares = nil
	okCfg.IndexCellSize = 0
	if _, err := Generate(okCfg); err != nil {
		t.Fatalf("defaulting config should work: %v", err)
	}
}
