// Package poi models the semantic-point data source of SeMiTri: points of
// interest with the five top-level categories of the Milan dataset used in
// §4.3/§5.2 (services, feedings, item sale, person life, unknown), a
// spatial index for neighbourhood queries and a synthetic urban POI
// generator that reproduces the category frequencies and the dense-core /
// sparse-periphery density profile of the original (proprietary) dataset.
//
// The index comes from the shared spatial layer: Add only buffers, and the
// first query bulk-loads an immutable index over the POI positions, with
// the structure chosen by spatial.NewIndex's density heuristic (a dense
// urban point cloud lands on the uniform grid; tiny sets on the STR tree).
// Separately from the index, the set keeps a fixed-geometry spatial.Grid
// used by the point annotation layer to discretize its emission
// probabilities (Figs. 7/8) — discretization resolution and index bucket
// size are independent concerns.
package poi

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"semitri/internal/geo"
	"semitri/internal/spatial"
)

// Category is one of the five Milan top-level POI categories.
type Category int

const (
	// Services covers banks, post offices, public services.
	Services Category = iota
	// Feedings covers restaurants, bars, cafes.
	Feedings
	// ItemSale covers shops, groceries, malls.
	ItemSale
	// PersonLife covers sport, health, education, leisure.
	PersonLife
	// Unknown covers uncategorised POIs.
	Unknown
)

// NumCategories is the number of POI categories.
const NumCategories = 5

// AllCategories lists the categories in index order.
var AllCategories = []Category{Services, Feedings, ItemSale, PersonLife, Unknown}

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Services:
		return "services"
	case Feedings:
		return "feedings"
	case ItemSale:
		return "item sale"
	case PersonLife:
		return "person life"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Valid reports whether c is one of the five categories.
func (c Category) Valid() bool { return c >= Services && c <= Unknown }

// MilanCounts are the per-category POI counts of the Milan dataset reported
// in Fig. 5 of the paper (4,339 services, 7,036 feedings, 12,510 item sale,
// 15,371 person life, 516 unknown, total 39,772). They calibrate both the
// synthetic generator and the HMM initial distribution π.
var MilanCounts = map[Category]int{
	Services:   4339,
	Feedings:   7036,
	ItemSale:   12510,
	PersonLife: 15371,
	Unknown:    516,
}

// MilanTotal is the total POI count of the Milan dataset.
const MilanTotal = 39772

// MilanShares returns the Milan category frequencies as a probability
// vector indexed by Category.
func MilanShares() []float64 {
	out := make([]float64, NumCategories)
	for c, n := range MilanCounts {
		out[int(c)] = float64(n) / float64(MilanTotal)
	}
	return out
}

// POI is a point of interest (a semantic place with a point extent).
type POI struct {
	ID       int
	Name     string
	Category Category
	Position geo.Point
}

// Set is a collection of POIs with a bulk-loaded spatial index.
type Set struct {
	pois  []*POI
	byCat map[Category][]*POI
	grid  *spatial.Grid // emission-discretization geometry (point layer)

	// mu guards the lazily bulk-loaded index; Add invalidates it, the first
	// query after a mutation rebuilds it.
	mu  sync.Mutex
	idx spatial.Index
}

// NewSet creates an empty POI set covering the given extent; cellSize
// controls the resolution of the emission-discretization grid.
func NewSet(extent geo.Rect, cellSize float64) (*Set, error) {
	g, err := spatial.NewGrid(extent, cellSize)
	if err != nil {
		return nil, fmt.Errorf("poi: %w", err)
	}
	return &Set{grid: g, byCat: map[Category][]*POI{}}, nil
}

// Add inserts a POI; it returns an error when the category is invalid or
// the position is outside the set's extent. The set may be mutated while it
// is being built; once annotators are constructed over it, it must be
// treated as read-only.
func (s *Set) Add(name string, cat Category, pos geo.Point) (*POI, error) {
	if !cat.Valid() {
		return nil, fmt.Errorf("poi: invalid category %d", int(cat))
	}
	if !s.grid.Bounds().ContainsPoint(pos) {
		return nil, errors.New("poi: position outside the set extent")
	}
	p := &POI{ID: len(s.pois), Name: name, Category: cat, Position: pos}
	s.pois = append(s.pois, p)
	s.byCat[cat] = append(s.byCat[cat], p)
	s.mu.Lock()
	s.idx = nil // rebuilt by the next query
	s.mu.Unlock()
	return p, nil
}

// Index returns the immutable bulk-loaded spatial index over the POI
// positions (items carry *POI values), building it on first use. The point
// annotation layer captures it once and issues its HMM candidate queries
// through the spatial.Index interface.
func (s *Set) Index() spatial.Index {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx == nil {
		items := make([]spatial.Item, len(s.pois))
		for i, p := range s.pois {
			items[i] = spatial.Item{Rect: geo.Rect{Min: p.Position, Max: p.Position}, Value: p}
		}
		s.idx = spatial.NewIndex(items)
	}
	return s.idx
}

// Len returns the number of POIs in the set.
func (s *Set) Len() int { return len(s.pois) }

// All returns all POIs (shared slice; callers must not mutate).
func (s *Set) All() []*POI { return s.pois }

// ByCategory returns the POIs of the given category.
func (s *Set) ByCategory(c Category) []*POI { return s.byCat[c] }

// CategoryCounts returns the number of POIs per category, indexed by Category.
func (s *Set) CategoryCounts() []int {
	out := make([]int, NumCategories)
	for c, list := range s.byCat {
		out[int(c)] = len(list)
	}
	return out
}

// CategoryShares returns the per-category frequencies (the π vector of the
// HMM, §4.3 "Initial Probabilities"). An empty set yields a uniform vector.
func (s *Set) CategoryShares() []float64 {
	out := make([]float64, NumCategories)
	if len(s.pois) == 0 {
		for i := range out {
			out[i] = 1.0 / NumCategories
		}
		return out
	}
	for c, list := range s.byCat {
		out[int(c)] = float64(len(list)) / float64(len(s.pois))
	}
	return out
}

// Grid exposes the emission-discretization grid geometry used by the point
// annotation layer (Figs. 7/8).
func (s *Set) Grid() *spatial.Grid { return s.grid }

// WithinDistance returns the POIs within dist of p, ordered by id.
func (s *Set) WithinDistance(p geo.Point, dist float64) []*POI {
	return poisOf(spatial.WithinDistance(s.Index(), p, dist))
}

// WithinRect returns the POIs inside r, ordered by id.
func (s *Set) WithinRect(r geo.Rect) []*POI {
	return poisOf(spatial.Within(s.Index(), r))
}

// poisOf unwraps index items into POIs sorted by id.
func poisOf(items []spatial.Item) []*POI {
	out := make([]*POI, 0, len(items))
	for _, it := range items {
		out = append(out, it.Value.(*POI))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Nearest returns the POI closest to p; ok is false for an empty set.
func (s *Set) Nearest(p geo.Point) (*POI, float64, bool) {
	it, d, ok := spatial.Nearest(s.Index(), p)
	if !ok {
		return nil, 0, false
	}
	return it.Value.(*POI), d, true
}

// DensityAround returns the number of POIs within dist of p divided by the
// search disc area (POIs per square metre), a measure of local POI density
// used to characterise "densely populated" areas (§4.3).
func (s *Set) DensityAround(p geo.Point, dist float64) float64 {
	if dist <= 0 {
		return 0
	}
	n := len(s.WithinDistance(p, dist))
	return float64(n) / (3.141592653589793 * dist * dist)
}

// GeneratorConfig controls the synthetic urban POI generator.
type GeneratorConfig struct {
	// Extent of the POI set.
	Extent geo.Rect
	// Total number of POIs to generate.
	Total int
	// Seed drives reproducibility.
	Seed int64
	// Shares is the target category distribution indexed by Category;
	// nil uses the Milan shares.
	Shares []float64
	// CenterConcentration in (0,1] controls how strongly POIs concentrate
	// around the extent centre (1 = all in the core, 0.6 is city-like).
	CenterConcentration float64
	// ClusterCount is the number of secondary commercial clusters.
	ClusterCount int
	// IndexCellSize is the resolution of the spatial index (metres).
	IndexCellSize float64
}

// DefaultGeneratorConfig returns a Milan-like configuration scaled to the
// given total POI count over a 10 km x 10 km extent.
func DefaultGeneratorConfig(total int, seed int64) GeneratorConfig {
	return GeneratorConfig{
		Extent:              geo.NewRect(geo.Pt(0, 0), geo.Pt(10000, 10000)),
		Total:               total,
		Seed:                seed,
		Shares:              MilanShares(),
		CenterConcentration: 0.6,
		ClusterCount:        8,
		IndexCellSize:       100,
	}
}

// Generate builds a synthetic POI set: a dense core around the extent
// centre, a handful of secondary clusters (malls, neighbourhood centres) and
// a uniform background, with per-POI categories drawn from the configured
// shares. The result reproduces the two properties that matter to the HMM
// point layer: realistic category frequencies and high local density with
// many candidate POIs around urban stops.
func Generate(cfg GeneratorConfig) (*Set, error) {
	if cfg.Total <= 0 {
		return nil, errors.New("poi: Total must be positive")
	}
	if cfg.IndexCellSize <= 0 {
		cfg.IndexCellSize = 100
	}
	shares := cfg.Shares
	if shares == nil {
		shares = MilanShares()
	}
	if len(shares) != NumCategories {
		return nil, fmt.Errorf("poi: Shares must have %d entries", NumCategories)
	}
	set, err := NewSet(cfg.Extent, cfg.IndexCellSize)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	center := cfg.Extent.Center()
	coreRadius := cfg.Extent.Width() * 0.15
	// Secondary cluster centres.
	clusters := make([]geo.Point, cfg.ClusterCount)
	for i := range clusters {
		clusters[i] = geo.Pt(
			cfg.Extent.Min.X+rng.Float64()*cfg.Extent.Width(),
			cfg.Extent.Min.Y+rng.Float64()*cfg.Extent.Height(),
		)
	}
	cumulative := make([]float64, NumCategories)
	var acc float64
	for i, s := range shares {
		acc += s
		cumulative[i] = acc
	}
	drawCategory := func() Category {
		r := rng.Float64() * acc
		for i, c := range cumulative {
			if r <= c {
				return Category(i)
			}
		}
		return Unknown
	}
	clampToExtent := func(p geo.Point) geo.Point {
		x := p.X
		y := p.Y
		if x < cfg.Extent.Min.X {
			x = cfg.Extent.Min.X
		}
		if x > cfg.Extent.Max.X {
			x = cfg.Extent.Max.X
		}
		if y < cfg.Extent.Min.Y {
			y = cfg.Extent.Min.Y
		}
		if y > cfg.Extent.Max.Y {
			y = cfg.Extent.Max.Y
		}
		return geo.Pt(x, y)
	}
	for i := 0; i < cfg.Total; i++ {
		var pos geo.Point
		r := rng.Float64()
		switch {
		case r < cfg.CenterConcentration:
			// Dense urban core: Gaussian around the centre.
			pos = geo.Pt(center.X+rng.NormFloat64()*coreRadius, center.Y+rng.NormFloat64()*coreRadius)
		case r < cfg.CenterConcentration+0.25 && len(clusters) > 0:
			c := clusters[rng.Intn(len(clusters))]
			pos = geo.Pt(c.X+rng.NormFloat64()*coreRadius*0.3, c.Y+rng.NormFloat64()*coreRadius*0.3)
		default:
			pos = geo.Pt(
				cfg.Extent.Min.X+rng.Float64()*cfg.Extent.Width(),
				cfg.Extent.Min.Y+rng.Float64()*cfg.Extent.Height(),
			)
		}
		pos = clampToExtent(pos)
		cat := drawCategory()
		name := fmt.Sprintf("%s-%d", cat.String(), i)
		if _, err := set.Add(name, cat, pos); err != nil {
			return nil, err
		}
	}
	return set, nil
}
