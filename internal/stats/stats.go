// Package stats provides the small statistical toolkit used by SeMiTri's
// Semantic Trajectory Analytics Layer and by the experiment harness:
// summary statistics, category distributions (Figs. 9, 11, 14), logarithmic
// histograms for the log-log plots of Fig. 12 and latency accounting for
// Fig. 17.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary holds the classic five-number-style summary of a sample.
type Summary struct {
	Count  int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P95    float64
	StdDev float64
}

// Summarize computes a Summary of the sample; the zero Summary is returned
// for an empty sample.
func Summarize(sample []float64) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	var varSum float64
	for _, v := range sorted {
		d := v - mean
		varSum += d * d
	}
	return Summary{
		Count:  len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Median: Percentile(sorted, 50),
		P95:    Percentile(sorted, 95),
		StdDev: math.Sqrt(varSum / float64(len(sorted))),
	}
}

// Percentile returns the p-th percentile (0..100) of an already sorted
// sample using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Distribution is a categorical distribution: share of observations (or of
// weight) per named category. It renders the per-category columns of
// Figs. 9, 11 and 14.
type Distribution struct {
	counts map[string]float64
	total  float64
}

// NewDistribution returns an empty distribution.
func NewDistribution() *Distribution {
	return &Distribution{counts: map[string]float64{}}
}

// Add increments the weight of a category.
func (d *Distribution) Add(category string, weight float64) {
	if weight <= 0 {
		return
	}
	d.counts[category] += weight
	d.total += weight
}

// AddCount increments a category by one observation.
func (d *Distribution) AddCount(category string) { d.Add(category, 1) }

// Total returns the total accumulated weight.
func (d *Distribution) Total() float64 { return d.total }

// Count returns the weight accumulated for a category.
func (d *Distribution) Count(category string) float64 { return d.counts[category] }

// Share returns the fraction of the total weight held by the category.
func (d *Distribution) Share(category string) float64 {
	if d.total == 0 {
		return 0
	}
	return d.counts[category] / d.total
}

// Categories returns the category names sorted by decreasing share.
func (d *Distribution) Categories() []string {
	out := make([]string, 0, len(d.counts))
	for c := range d.counts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if d.counts[out[i]] != d.counts[out[j]] {
			return d.counts[out[i]] > d.counts[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// TopN returns the n categories with the largest share (fewer when the
// distribution has fewer categories), as used for the per-user top-5
// land-use categories of Fig. 14.
func (d *Distribution) TopN(n int) []string {
	cats := d.Categories()
	if n < len(cats) {
		cats = cats[:n]
	}
	return cats
}

// Shares returns a map of category to share.
func (d *Distribution) Shares() map[string]float64 {
	out := make(map[string]float64, len(d.counts))
	for c := range d.counts {
		out[c] = d.Share(c)
	}
	return out
}

// String renders the distribution as "cat=share%" pairs sorted by share.
func (d *Distribution) String() string {
	var b strings.Builder
	for i, c := range d.Categories() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.1f%%", c, d.Share(c)*100)
	}
	return b.String()
}

// LogHistogram buckets positive values into logarithmic (base-10) bins, the
// representation behind the log-log plot of Fig. 12.
type LogHistogram struct {
	// BinsPerDecade controls resolution; 1 gives decade bins.
	BinsPerDecade int
	counts        map[int]int
	total         int
}

// NewLogHistogram returns an empty histogram with the given resolution.
func NewLogHistogram(binsPerDecade int) *LogHistogram {
	if binsPerDecade < 1 {
		binsPerDecade = 1
	}
	return &LogHistogram{BinsPerDecade: binsPerDecade, counts: map[int]int{}}
}

// Add records a value; non-positive values are ignored.
func (h *LogHistogram) Add(v float64) {
	if v <= 0 {
		return
	}
	bin := int(math.Floor(math.Log10(v) * float64(h.BinsPerDecade)))
	h.counts[bin]++
	h.total++
}

// Total returns the number of recorded values.
func (h *LogHistogram) Total() int { return h.total }

// Bin describes one histogram bin: the lower bound of the bin and its count.
type Bin struct {
	Lower float64
	Count int
}

// Bins returns the non-empty bins ordered by lower bound.
func (h *LogHistogram) Bins() []Bin {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Bin, len(keys))
	for i, k := range keys {
		out[i] = Bin{Lower: math.Pow(10, float64(k)/float64(h.BinsPerDecade)), Count: h.counts[k]}
	}
	return out
}

// LatencyBreakdown accumulates wall-clock time per named pipeline stage and
// reports per-item averages (Fig. 17).
type LatencyBreakdown struct {
	totals map[string]time.Duration
	counts map[string]int
	order  []string
}

// NewLatencyBreakdown returns an empty latency accumulator.
func NewLatencyBreakdown() *LatencyBreakdown {
	return &LatencyBreakdown{totals: map[string]time.Duration{}, counts: map[string]int{}}
}

// Record adds one observation of the given stage.
func (l *LatencyBreakdown) Record(stage string, d time.Duration) {
	if _, seen := l.totals[stage]; !seen {
		l.order = append(l.order, stage)
	}
	l.totals[stage] += d
	l.counts[stage]++
}

// Stages returns the stage names in first-recorded order.
func (l *LatencyBreakdown) Stages() []string { return append([]string(nil), l.order...) }

// Average returns the mean duration recorded for the stage.
func (l *LatencyBreakdown) Average(stage string) time.Duration {
	n := l.counts[stage]
	if n == 0 {
		return 0
	}
	return l.totals[stage] / time.Duration(n)
}

// Total returns the accumulated duration of the stage.
func (l *LatencyBreakdown) Total(stage string) time.Duration { return l.totals[stage] }

// Count returns the number of observations of the stage.
func (l *LatencyBreakdown) Count(stage string) int { return l.counts[stage] }

// Merge adds the contents of other into l.
func (l *LatencyBreakdown) Merge(other *LatencyBreakdown) {
	if other == nil {
		return
	}
	for _, s := range other.order {
		if _, seen := l.totals[s]; !seen {
			l.order = append(l.order, s)
		}
		l.totals[s] += other.totals[s]
		l.counts[s] += other.counts[s]
	}
}

// CompressionRatio returns 1 - compressed/original, i.e. the storage saving
// reported in §5.2 ("99.7% storage compression"). It returns 0 when original
// is not positive.
func CompressionRatio(originalUnits, compressedUnits int) float64 {
	if originalUnits <= 0 {
		return 0
	}
	r := 1 - float64(compressedUnits)/float64(originalUnits)
	if r < 0 {
		return 0
	}
	return r
}
