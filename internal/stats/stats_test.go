package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Fatalf("empty sample should give zero summary: %+v", got)
	}
	one := Summarize([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.Median != 7 || one.StdDev != 0 {
		t.Fatalf("single sample = %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Percentile(sorted, 0) != 10 || Percentile(sorted, 100) != 40 {
		t.Fatal("extremes wrong")
	}
	if got := Percentile(sorted, 50); got != 25 {
		t.Fatalf("P50 = %v", got)
	}
	if got := Percentile(sorted, -5); got != 10 {
		t.Fatalf("negative percentile = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	if got := Percentile([]float64{5}, 73); got != 5 {
		t.Fatalf("single value percentile = %v", got)
	}
}

// Property: the median lies between min and max, and stddev is non-negative.
func TestSummarizeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := make([]float64, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, math.Mod(v, 1e9))
			}
		}
		s := Summarize(clean)
		if len(clean) == 0 {
			return s.Count == 0
		}
		return s.Min <= s.Median && s.Median <= s.Max && s.StdDev >= 0 && s.Count == len(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistribution(t *testing.T) {
	d := NewDistribution()
	if d.Total() != 0 || d.Share("x") != 0 {
		t.Fatal("empty distribution should have zero total and shares")
	}
	d.AddCount("building")
	d.AddCount("building")
	d.Add("transport", 2)
	d.Add("forest", 0) // ignored
	d.Add("forest", -3)
	if d.Total() != 4 {
		t.Fatalf("Total = %v", d.Total())
	}
	if d.Count("building") != 2 || d.Share("building") != 0.5 {
		t.Fatalf("building share = %v", d.Share("building"))
	}
	if d.Share("missing") != 0 {
		t.Fatal("missing category share should be 0")
	}
	cats := d.Categories()
	if len(cats) != 2 {
		t.Fatalf("Categories = %v", cats)
	}
	// Equal weights sort by name; both have weight 2.
	if cats[0] != "building" || cats[1] != "transport" {
		t.Fatalf("Categories order = %v", cats)
	}
	if got := d.TopN(1); len(got) != 1 {
		t.Fatalf("TopN(1) = %v", got)
	}
	if got := d.TopN(10); len(got) != 2 {
		t.Fatalf("TopN(10) = %v", got)
	}
	shares := d.Shares()
	if math.Abs(shares["building"]+shares["transport"]-1) > 1e-9 {
		t.Fatalf("Shares = %v", shares)
	}
	if s := d.String(); !strings.Contains(s, "building=50.0%") {
		t.Fatalf("String = %q", s)
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(1)
	for _, v := range []float64{1, 5, 9, 15, 99, 150, 1500, 0, -3} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	bins := h.Bins()
	if len(bins) != 4 {
		t.Fatalf("bins = %+v", bins)
	}
	// Decade bins: [1,10): 3 values, [10,100): 2, [100,1000): 1, [1000,..): 1.
	wantCounts := []int{3, 2, 1, 1}
	wantLowers := []float64{1, 10, 100, 1000}
	for i, b := range bins {
		if b.Count != wantCounts[i] || math.Abs(b.Lower-wantLowers[i]) > 1e-9 {
			t.Fatalf("bin %d = %+v", i, b)
		}
	}
	// Higher resolution.
	h2 := NewLogHistogram(2)
	h2.Add(1)
	h2.Add(3) // sqrt(10)≈3.16 boundary: 3 -> bin 0, 4 -> bin 1
	h2.Add(4)
	if got := len(h2.Bins()); got != 2 {
		t.Fatalf("2-bin-per-decade bins = %d", got)
	}
	// Invalid resolution clamps to 1.
	h3 := NewLogHistogram(0)
	if h3.BinsPerDecade != 1 {
		t.Fatalf("BinsPerDecade = %d", h3.BinsPerDecade)
	}
}

func TestLatencyBreakdown(t *testing.T) {
	l := NewLatencyBreakdown()
	l.Record("compute episode", 10*time.Millisecond)
	l.Record("compute episode", 20*time.Millisecond)
	l.Record("store episode", 200*time.Millisecond)
	if got := l.Average("compute episode"); got != 15*time.Millisecond {
		t.Fatalf("Average = %v", got)
	}
	if got := l.Total("store episode"); got != 200*time.Millisecond {
		t.Fatalf("Total = %v", got)
	}
	if l.Count("compute episode") != 2 || l.Count("missing") != 0 {
		t.Fatal("Count wrong")
	}
	if got := l.Average("missing"); got != 0 {
		t.Fatalf("missing stage average = %v", got)
	}
	stages := l.Stages()
	if len(stages) != 2 || stages[0] != "compute episode" || stages[1] != "store episode" {
		t.Fatalf("Stages = %v", stages)
	}
	other := NewLatencyBreakdown()
	other.Record("store episode", 100*time.Millisecond)
	other.Record("map match", 5*time.Millisecond)
	l.Merge(other)
	if l.Count("store episode") != 2 || l.Count("map match") != 1 {
		t.Fatalf("merge failed: %+v", l.counts)
	}
	if len(l.Stages()) != 3 {
		t.Fatalf("Stages after merge = %v", l.Stages())
	}
	l.Merge(nil) // no-op
}

func TestCompressionRatio(t *testing.T) {
	if got := CompressionRatio(1000, 3); math.Abs(got-0.997) > 1e-9 {
		t.Fatalf("CompressionRatio = %v", got)
	}
	if CompressionRatio(0, 5) != 0 {
		t.Fatal("zero original should give 0")
	}
	if CompressionRatio(10, 20) != 0 {
		t.Fatal("negative saving should clamp to 0")
	}
	if CompressionRatio(10, 0) != 1 {
		t.Fatal("full compression should give 1")
	}
}
