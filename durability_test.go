package semitri_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"semitri"
	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/gps"
	"semitri/internal/store"
	"semitri/internal/wal"
)

// durableConfig returns the default pipeline config with the WAL enabled on
// dir and a short group-commit window so tests exercise real flush cycles.
func durableConfig(dir string) semitri.Config {
	cfg := semitri.DefaultConfig()
	cfg.Durability = semitri.Durability{Dir: dir, FlushInterval: 5 * time.Millisecond}
	return cfg
}

// TestDurableRecoveryParity is the crash-recovery counterpart of
// TestBatchStreamParity: the same person-days are streamed into a durable
// pipeline, the WAL directory is recovered into a fresh store (exactly what
// a process restart after kill -9 does), and the recovered store must be
// tuple-for-tuple identical to the live one at the last durable point. It
// then checkpoints and recovers again, covering the snapshot + empty-tail
// path.
func TestDurableRecoveryParity(t *testing.T) {
	city := newTestCity(t, 1, 3000)
	records := peopleRecords(t, city, 2, 2, 5)
	dir := t.TempDir()

	p := newTestPipeline(t, city, durableConfig(dir))
	sp := p.NewStream()
	for _, r := range records {
		if _, err := sp.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sp.Close(); err != nil { // Close syncs the WAL
		t.Fatal(err)
	}

	// Pure log replay (no checkpoint has run): what a kill -9 restart sees.
	rec, stats, err := wal.Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotLoaded {
		t.Fatal("no checkpoint ran, yet recovery loaded a snapshot")
	}
	if stats.FramesApplied == 0 {
		t.Fatal("recovery replayed no frames")
	}
	assertDurableParity(t, p.Store(), rec)

	// Checkpoint + recover: snapshot plus (empty) tail must give the same
	// store, proving snapshot and replay agree on every table.
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rec2, stats2, err := wal.Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.SnapshotLoaded {
		t.Fatal("recovery after checkpoint ignored the snapshot")
	}
	assertDurableParity(t, p.Store(), rec2)

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Restarting over the same directory recovers the identical store and
	// keeps a configured shard count (the LoadSharded satellite).
	cfg := durableConfig(dir)
	cfg.StoreShards = 7
	restarted, err := semitri.New(semitri.Sources{
		Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if !restarted.Durable() {
		t.Fatal("restarted pipeline is not durable")
	}
	if got := restarted.Store().ShardCount(); got != 7 {
		t.Fatalf("restarted store has %d shards, want 7", got)
	}
	assertDurableParity(t, p.Store(), restarted.Store())
}

// TestDurableRecoveryParityConcurrent runs the same parity check with
// multiple objects ingested from concurrent goroutines while checkpoints
// race the ingestion — the -race configuration of the durability
// acceptance criterion.
func TestDurableRecoveryParityConcurrent(t *testing.T) {
	city := newTestCity(t, 2, 3000)
	const objects = 6
	records := peopleRecords(t, city, objects, 1, 17)
	perObject := map[string][]gps.Record{}
	for _, r := range records {
		perObject[r.ObjectID] = append(perObject[r.ObjectID], r)
	}
	feeds := make([][]gps.Record, 0, len(perObject))
	for _, recs := range perObject {
		feeds = append(feeds, recs)
	}
	dir := t.TempDir()
	p := newTestPipeline(t, city, durableConfig(dir))
	sp := p.NewStream()

	const workers = 3
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for f := w; f < len(feeds); f += workers {
				for _, r := range feeds[f] {
					if _, err := sp.Add(r); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	// Checkpoints racing live ingestion: every recovery below must still be
	// exact, because mutations racing the snapshot stay in retained
	// segments and replay idempotently.
	cpDone := make(chan struct{})
	go func() {
		defer close(cpDone)
		for i := 0; i < 3; i++ {
			if err := p.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-cpDone
	if t.Failed() {
		t.FailNow()
	}
	if _, err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	rec, _, err := wal.Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertDurableParity(t, p.Store(), rec)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, stats, err := wal.Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.SnapshotLoaded {
		t.Fatal("final checkpoint left no snapshot")
	}
	assertDurableParity(t, p.Store(), rec2)
}

// assertDurableParity compares a live store against a recovered one
// tuple-for-tuple: record tables, raw trajectories, episode sequences and
// every structured interpretation. Times are compared as instants (the WAL
// codec and the JSON snapshot restore times in UTC).
func assertDurableParity(t *testing.T, live, rec *store.Store) {
	t.Helper()
	if live.RecordCount() != rec.RecordCount() {
		t.Fatalf("record count: live %d, recovered %d", live.RecordCount(), rec.RecordCount())
	}
	ls, lm := live.EpisodeCounts()
	rs, rm := rec.EpisodeCounts()
	if ls != rs || lm != rm {
		t.Fatalf("episode counts: live %d/%d, recovered %d/%d", ls, lm, rs, rm)
	}
	if live.StructuredCount() != rec.StructuredCount() {
		t.Fatalf("structured count: live %d, recovered %d", live.StructuredCount(), rec.StructuredCount())
	}
	if !reflect.DeepEqual(live.Objects(), rec.Objects()) {
		t.Fatalf("objects: live %v, recovered %v", live.Objects(), rec.Objects())
	}
	for _, obj := range live.Objects() {
		lr, rr := live.Records(obj), rec.Records(obj)
		if err := recordsMatch(lr, rr); err != nil {
			t.Fatalf("object %s records: %v", obj, err)
		}
	}
	ids := live.TrajectoryIDs("")
	if !reflect.DeepEqual(ids, rec.TrajectoryIDs("")) {
		t.Fatalf("trajectory ids: live %v, recovered %v", ids, rec.TrajectoryIDs(""))
	}
	for _, id := range ids {
		lt, _ := live.Trajectory(id)
		rt, ok := rec.Trajectory(id)
		if !ok {
			t.Fatalf("recovered store missing trajectory %s", id)
		}
		if lt.ObjectID != rt.ObjectID {
			t.Fatalf("trajectory %s object: live %s, recovered %s", id, lt.ObjectID, rt.ObjectID)
		}
		if err := recordsMatch(lt.Records, rt.Records); err != nil {
			t.Fatalf("trajectory %s records: %v", id, err)
		}
		leps, reps := live.Episodes(id), rec.Episodes(id)
		if len(leps) != len(reps) {
			t.Fatalf("trajectory %s: live %d episodes, recovered %d", id, len(leps), len(reps))
		}
		for i := range leps {
			if !durEpisodesEqual(leps[i], reps[i]) {
				t.Fatalf("trajectory %s episode %d differs:\n live      %+v\n recovered %+v",
					id, i, *leps[i], *reps[i])
			}
		}
		if !reflect.DeepEqual(live.Interpretations(id), rec.Interpretations(id)) {
			t.Fatalf("trajectory %s interpretations: live %v, recovered %v",
				id, live.Interpretations(id), rec.Interpretations(id))
		}
		for _, interp := range live.Interpretations(id) {
			lo, ltu, _ := live.TupleSnapshot(id, interp)
			ro, rtu, ok := rec.TupleSnapshot(id, interp)
			if !ok || lo != ro {
				t.Fatalf("%s/%s: recovered object id %q, live %q (ok=%v)", id, interp, ro, lo, ok)
			}
			if len(ltu) != len(rtu) {
				t.Fatalf("%s/%s: live %d tuples, recovered %d", id, interp, len(ltu), len(rtu))
			}
			for i := range ltu {
				if err := durTuplesEqual(&ltu[i], &rtu[i]); err != nil {
					t.Fatalf("%s/%s tuple %d: %v\n live      %+v\n recovered %+v",
						id, interp, i, err, ltu[i], rtu[i])
				}
			}
		}
	}
}

func recordsMatch(a, b []gps.Record) error {
	if len(a) != len(b) {
		return fmt.Errorf("live %d, recovered %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ObjectID != b[i].ObjectID || a[i].Position != b[i].Position || !a[i].Time.Equal(b[i].Time) {
			return fmt.Errorf("record %d: live %+v, recovered %+v", i, a[i], b[i])
		}
	}
	return nil
}

func durEpisodesEqual(a, b *episode.Episode) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.TrajectoryID == b.TrajectoryID && a.ObjectID == b.ObjectID && a.Kind == b.Kind &&
		a.StartIdx == b.StartIdx && a.EndIdx == b.EndIdx &&
		a.Start.Equal(b.Start) && a.End.Equal(b.End) &&
		a.Center == b.Center && a.Bounds == b.Bounds &&
		a.AvgSpeed == b.AvgSpeed && a.MaxSpeed == b.MaxSpeed &&
		a.Distance == b.Distance && a.RecordCount == b.RecordCount
}

func durTuplesEqual(a, b *core.EpisodeTuple) error {
	if a.Kind != b.Kind {
		return fmt.Errorf("kind %v vs %v", a.Kind, b.Kind)
	}
	if !a.TimeIn.Equal(b.TimeIn) || !a.TimeOut.Equal(b.TimeOut) {
		return fmt.Errorf("times differ")
	}
	if (a.Place == nil) != (b.Place == nil) {
		return fmt.Errorf("place presence differs")
	}
	if a.Place != nil && *a.Place != *b.Place {
		return fmt.Errorf("place differs")
	}
	if !reflect.DeepEqual(a.Annotations.All(), b.Annotations.All()) {
		return fmt.Errorf("annotations differ: %s vs %s", a.Annotations.String(), b.Annotations.String())
	}
	if !durEpisodesEqual(a.Episode, b.Episode) {
		return fmt.Errorf("episode back-pointer differs")
	}
	return nil
}
