package semitri

import (
	"strings"
	"sync"
	"testing"
	"time"

	"semitri/internal/core"
	"semitri/internal/episode"
	"semitri/internal/gps"
	"semitri/internal/line"
	"semitri/internal/workload"
)

// testCity is shared across the package tests because building the
// synthetic environment dominates test time.
var (
	cityOnce sync.Once
	cityVal  *workload.City
	cityErr  error
)

func sharedCity(t testing.TB) *workload.City {
	t.Helper()
	cityOnce.Do(func() {
		cfg := workload.DefaultCityConfig(3, 3000)
		cityVal, cityErr = workload.NewCity(cfg)
	})
	if cityErr != nil {
		t.Fatal(cityErr)
	}
	return cityVal
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Sources{}, DefaultConfig()); err == nil {
		t.Fatal("no sources should error")
	}
	city := sharedCity(t)
	bad := DefaultConfig()
	bad.Episode.SpeedThreshold = 0
	if _, err := New(Sources{Landuse: city.Landuse}, bad); err == nil {
		t.Fatal("invalid episode config should error")
	}
	bad = DefaultConfig()
	bad.Line.CandidateRadius = -1
	if _, err := New(Sources{Roads: city.Roads}, bad); err == nil {
		t.Fatal("invalid line config should error")
	}
	bad = DefaultConfig()
	bad.Point.Sigma = -1
	if _, err := New(Sources{POIs: city.POIs}, bad); err == nil {
		t.Fatal("invalid point config should error")
	}
	// Partial sources are fine.
	if _, err := New(Sources{Landuse: city.Landuse}, DefaultConfig()); err != nil {
		t.Fatalf("landuse-only pipeline: %v", err)
	}
	if _, err := New(Sources{Roads: city.Roads}, DefaultConfig()); err != nil {
		t.Fatalf("roads-only pipeline: %v", err)
	}
}

func TestProcessRecordsPeopleEndToEnd(t *testing.T) {
	city := sharedCity(t)
	people, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(2, 2, 17))
	if err != nil {
		t.Fatal(err)
	}
	pipeline, err := New(Sources{Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	result, err := pipeline.ProcessRecords(people.Records())
	if err != nil {
		t.Fatal(err)
	}
	if len(result.TrajectoryIDs) == 0 {
		t.Fatal("no trajectories processed")
	}
	if result.Stops == 0 || result.Moves == 0 {
		t.Fatalf("expected stops and moves, got %d/%d", result.Stops, result.Moves)
	}
	if result.Records == 0 {
		t.Fatal("no cleaned records reported")
	}
	st := pipeline.Store()
	if st.TrajectoryCount() != len(result.TrajectoryIDs) {
		t.Fatalf("store has %d trajectories, result reports %d", st.TrajectoryCount(), len(result.TrajectoryIDs))
	}
	stops, moves := st.EpisodeCounts()
	if stops != result.Stops || moves != result.Moves {
		t.Fatalf("store episode counts %d/%d differ from result %d/%d", stops, moves, result.Stops, result.Moves)
	}
	// Every trajectory must have the merged interpretation plus the layers
	// that apply; at least one must carry all five interpretations.
	sawAll := false
	for _, id := range result.TrajectoryIDs {
		merged, ok := st.Structured(id, InterpretationMerged)
		if !ok {
			t.Fatalf("trajectory %s has no merged interpretation", id)
		}
		if err := merged.Validate(); err != nil {
			t.Fatalf("merged trajectory %s invalid: %v", id, err)
		}
		if len(st.Interpretations(id)) >= 5 {
			sawAll = true
		}
	}
	if !sawAll {
		t.Fatal("no trajectory carries all five interpretations")
	}
	// Merged stop tuples should carry land-use and (when POIs were near)
	// category/activity annotations; move tuples should carry modes.
	var annotatedStops, annotatedMoves int
	for _, id := range result.TrajectoryIDs {
		merged, _ := st.Structured(id, InterpretationMerged)
		for _, tp := range merged.Tuples {
			if tp.Kind == episode.Stop && tp.Annotations.Value(core.AnnPOICategory) != "" {
				annotatedStops++
			}
			if tp.Kind == episode.Move && tp.Annotations.Value(core.AnnTransportMode) != "" {
				annotatedMoves++
			}
		}
	}
	if annotatedStops == 0 {
		t.Fatal("no stop carries a POI category annotation")
	}
	if annotatedMoves == 0 {
		t.Fatal("no move carries a transport mode annotation")
	}
	// Latency breakdown covers the pipeline stages of Fig. 17.
	lat := pipeline.Latency()
	for _, stage := range []string{StageComputeEpisode, StageStoreEpisode, StageLanduseJoin, StageMapMatch} {
		if lat.Count(stage) == 0 {
			t.Fatalf("latency breakdown missing stage %q (stages: %v)", stage, lat.Stages())
		}
	}
}

func TestProcessRecordsVehicle(t *testing.T) {
	city := sharedCity(t)
	taxi, err := workload.GenerateVehicles(city, workload.DefaultTaxiConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := VehicleConfig()
	cfg.DailySplit = false
	pipeline, err := New(Sources{Landuse: city.Landuse, Roads: city.Roads}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	result, err := pipeline.ProcessRecords(taxi.Records())
	if err != nil {
		t.Fatal(err)
	}
	if len(result.TrajectoryIDs) == 0 {
		t.Fatal("no taxi trajectories")
	}
	// All move tuples must carry the trivial car mode (vehicle override).
	st := pipeline.Store()
	for _, id := range result.TrajectoryIDs {
		lineTraj, ok := st.Structured(id, InterpretationLine)
		if !ok {
			continue
		}
		for _, tp := range lineTraj.Tuples {
			if got := tp.Annotations.Value(core.AnnTransportMode); got != string(line.ModeCar) {
				t.Fatalf("vehicle pipeline mode = %q", got)
			}
		}
	}
	// Region compression: the region interpretation should be far smaller
	// than the raw record count (§5.2).
	var tuples int
	for _, id := range result.TrajectoryIDs {
		if rt, ok := st.Structured(id, InterpretationRegion); ok {
			tuples += len(rt.Tuples)
		}
	}
	if tuples == 0 {
		t.Fatal("no region tuples stored")
	}
	if float64(tuples) > 0.2*float64(result.Records) {
		t.Fatalf("region representation has %d tuples for %d records; expected strong compression", tuples, result.Records)
	}
}

func TestProcessRecordsErrors(t *testing.T) {
	city := sharedCity(t)
	pipeline, err := New(Sources{Landuse: city.Landuse}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.ProcessRecords(nil); err == nil {
		t.Fatal("no records should error")
	}
	// Too few records to form a trajectory under MinRecords.
	few := []gps.Record{{ObjectID: "u", Position: city.Extent.Center(), Time: time.Now()}}
	if _, err := pipeline.ProcessRecords(few); err == nil {
		t.Fatal("too few records should error")
	}
	if err := pipeline.ProcessTrajectory(nil); err == nil {
		t.Fatal("nil trajectory should error")
	}
}

func TestProcessTrajectorySingle(t *testing.T) {
	city := sharedCity(t)
	drive, err := workload.GenerateDrive(city, workload.DefaultDriveConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	pipeline, err := New(Sources{Roads: city.Roads}, VehicleConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := &gps.RawTrajectory{ID: "drive-001-T0", ObjectID: "drive-001", Records: drive.PerObject["drive-001"]}
	if err := pipeline.ProcessTrajectory(tr); err != nil {
		t.Fatal(err)
	}
	st, ok := pipeline.Store().Structured("drive-001-T0", InterpretationLine)
	if !ok || len(st.Tuples) == 0 {
		t.Fatal("line interpretation missing for the drive")
	}
	// The drive should be matched to many distinct segments.
	segs := map[string]bool{}
	for _, tp := range st.Tuples {
		segs[tp.PlaceID()] = true
	}
	if len(segs) < 10 {
		t.Fatalf("drive matched to only %d distinct segments", len(segs))
	}
}

func TestMergedTrajectoryRendering(t *testing.T) {
	city := sharedCity(t)
	people, err := workload.GeneratePeople(city, workload.DefaultPeopleConfig(1, 1, 29))
	if err != nil {
		t.Fatal(err)
	}
	pipeline, err := New(Sources{Landuse: city.Landuse, Roads: city.Roads, POIs: city.POIs}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	result, err := pipeline.ProcessRecords(people.Records())
	if err != nil {
		t.Fatal(err)
	}
	merged, ok := pipeline.Store().Structured(result.TrajectoryIDs[0], InterpretationMerged)
	if !ok {
		t.Fatal("merged interpretation missing")
	}
	s := merged.String()
	if !strings.Contains(s, "->") || !strings.Contains(s, "(") {
		t.Fatalf("unexpected rendering: %q", s)
	}
}

func TestDominantModeAndLongestRunPlace(t *testing.T) {
	runs := []line.SegmentRun{
		{Mode: line.ModeWalk, StartIdx: 0, EndIdx: 4},
		{Mode: line.ModeMetro, StartIdx: 5, EndIdx: 40},
		{Mode: line.ModeWalk, StartIdx: 41, EndIdx: 45},
	}
	if got := dominantMode(runs); got != line.ModeMetro {
		t.Fatalf("dominantMode = %v", got)
	}
	if got := dominantMode(nil); got != "" {
		t.Fatalf("dominantMode(nil) = %q", got)
	}
	tuples := []*core.EpisodeTuple{
		{Place: &core.Place{ID: "seg-1", Kind: core.LinePlace}},
		{Place: &core.Place{ID: "seg-2", Kind: core.LinePlace}},
		{Place: &core.Place{ID: "seg-3", Kind: core.LinePlace}},
	}
	if got := longestRunPlace(runs, tuples); got == nil || got.ID != "seg-2" {
		t.Fatalf("longestRunPlace = %+v", got)
	}
	if got := longestRunPlace(nil, nil); got != nil {
		t.Fatal("empty runs should give nil")
	}
}

func TestConfigPresets(t *testing.T) {
	def := DefaultConfig()
	if !def.DailySplit || def.Workers < 1 {
		t.Fatalf("unexpected defaults: %+v", def)
	}
	veh := VehicleConfig()
	if veh.Line.VehicleMode != line.ModeCar {
		t.Fatal("vehicle preset should force the car mode")
	}
	if veh.Episode.MinStopDuration == def.Episode.MinStopDuration {
		t.Fatal("vehicle preset should use vehicle episode thresholds")
	}
}
